//! Telemetry primitive guarantees: concurrent recording is lossless,
//! quantile estimates bracket the truth within one log bucket, and
//! snapshot merging sums (never overwrites).

use std::sync::Arc;

use proptest::prelude::*;
use simcloud_telemetry::{Histogram, HistogramSnapshot};

/// N threads hammer one histogram; after they join, the snapshot is
/// exact — every sample counted, the sum byte-for-byte right, bucket
/// occupancies adding up to the count.
#[test]
fn concurrent_hammer_snapshot_is_exact() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let hist = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Deterministic spread across many buckets.
                    hist.record((t * PER_THREAD + i) * 37 % (1 << 20));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("hammer thread");
    }
    let expected_sum: u64 = (0..THREADS * PER_THREAD).map(|n| n * 37 % (1 << 20)).sum();
    let expected_max: u64 = (0..THREADS * PER_THREAD)
        .map(|n| n * 37 % (1 << 20))
        .max()
        .unwrap_or(0);
    let s = hist.snapshot();
    assert_eq!(s.count, THREADS * PER_THREAD);
    assert_eq!(s.sum, expected_sum);
    assert_eq!(s.max, expected_max);
    let bucket_total: u64 = (0..simcloud_telemetry::BUCKET_COUNT)
        .map(|i| s.bucket(i))
        .sum();
    assert_eq!(bucket_total, s.count, "every sample landed in a bucket");
}

/// The true rank-`ceil(q·n)` order statistic of the recorded samples.
fn true_quantile(samples: &[u64], q: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantile estimates never undershoot the true order statistic and
    /// overshoot by at most one power-of-two bucket (≤ 2x in value) —
    /// the bounded relative error the log-bucketed layout guarantees.
    #[test]
    fn quantiles_bracket_truth_within_one_bucket(
        samples in proptest::collection::vec(0u64..1_000_000_000, 1..200),
        qi in 0usize..3,
    ) {
        let q = [0.50, 0.95, 0.99][qi];
        let hist = Histogram::new();
        for &v in &samples {
            hist.record(v);
        }
        let est = hist.snapshot().quantile(q);
        let truth = true_quantile(&samples, q);
        prop_assert!(est >= truth, "estimate {est} undershoots true q{q} = {truth}");
        prop_assert!(
            est <= truth.max(1) * 2,
            "estimate {est} beyond one bucket above true q{q} = {truth}"
        );
    }

    /// `HistogramSnapshot::merge_from` sums counts, sums and every
    /// bucket, keeps the larger max, and equals the histogram that
    /// recorded both sample sets directly.
    #[test]
    fn snapshot_merge_sums_not_overwrites(
        a in proptest::collection::vec(0u64..1_000_000, 0..100),
        b in proptest::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let (ha, hb, hboth) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &v in &a {
            ha.record(v);
            hboth.record(v);
        }
        for &v in &b {
            hb.record(v);
            hboth.record(v);
        }
        let mut merged = ha.snapshot();
        merged.merge_from(&hb.snapshot());
        prop_assert_eq!(merged, hboth.snapshot());
    }
}

/// Merging into a default (empty) snapshot reproduces the source — the
/// identity law aggregation loops rely on.
#[test]
fn merge_into_empty_is_identity() {
    let h = Histogram::new();
    for v in [3, 900, 1 << 30] {
        h.record(v);
    }
    let mut acc = HistogramSnapshot::default();
    acc.merge_from(&h.snapshot());
    assert_eq!(acc, h.snapshot());
}
