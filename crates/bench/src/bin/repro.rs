//! `repro` — regenerates every table of the paper's evaluation.
//!
//! ```text
//! repro --all                    all tables at quick scale
//! repro --table 5                one table
//! repro --scale paper --table 6  paper-scale run
//! repro --cophir-n 1000000       override CoPhIR cardinality
//! repro --ablation pivots|strategy|transform|k|network
//! repro --shards 4 --table 5     encrypted searches against a sharded server
//! ```

use std::time::Duration;

use simcloud_bench::tables::{kb, millis, secs, Table};
use simcloud_bench::{
    ablation_k, ablation_network, ablation_pivots, ablation_strategy, ablation_transform,
    comparison_1nn, construction_encrypted, construction_plain, search_encrypted,
    search_encrypted_sharded, search_plain, Scale, SearchRow, Which,
};
use simcloud_datasets::Dataset;
use simcloud_metric::analysis::DistanceHistogram;

const SEED: u64 = 20120830; // SDM 2012 proceedings date

struct Args {
    scale: Scale,
    cophir_n: Option<usize>,
    tables: Vec<u32>,
    ablations: Vec<String>,
    /// Shard count for the encrypted-search tables (1 = single index).
    shards: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale::Quick,
        cophir_n: None,
        tables: Vec::new(),
        ablations: Vec::new(),
        shards: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--all" => args.tables = (1..=9).collect(),
            "--table" => {
                let n: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--table N (1..=9)");
                args.tables.push(n);
            }
            "--ablation" => {
                args.ablations
                    .push(it.next().expect("--ablation NAME").to_string());
            }
            "--scale" => {
                args.scale = match it.next().as_deref() {
                    Some("quick") => Scale::Quick,
                    Some("paper") => Scale::Paper,
                    other => panic!("unknown scale {other:?} (quick|paper)"),
                };
            }
            "--cophir-n" => {
                args.cophir_n = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--cophir-n N"),
                );
            }
            "--shards" => {
                args.shards = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--shards N (N >= 1)");
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--all] [--table N]... [--ablation NAME]... \
                     [--scale quick|paper] [--cophir-n N] [--shards N]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other}"),
        }
    }
    if args.tables.is_empty() && args.ablations.is_empty() {
        args.tables = (1..=9).collect();
    }
    args
}

fn main() {
    let args = parse_args();
    let sizes = args.scale.sizes(args.cophir_n);
    println!(
        "simcloud repro — scale {:?}: YEAST {} / HUMAN {} / CoPhIR {} records, {} queries, k = {}\n",
        args.scale, sizes.yeast_n, sizes.human_n, sizes.cophir_n, sizes.queries, sizes.k
    );

    let yeast = || Which::Yeast.dataset(sizes.yeast_n, SEED);
    let human = || Which::Human.dataset(sizes.human_n, SEED + 1);
    let cophir = || Which::Cophir.dataset(sizes.cophir_n, SEED + 2);

    for t in &args.tables {
        match t {
            1 => table1(&[yeast(), human(), cophir()]),
            2 => table2(),
            3 => table3_4(&[yeast(), human(), cophir()], true),
            4 => table3_4(&[yeast(), human(), cophir()], false),
            5 => {
                let ds = yeast();
                let rows = encrypted_rows(
                    &ds,
                    &args.scale.yeast_cand_sizes(),
                    sizes.queries,
                    sizes.k,
                    args.shards,
                );
                print_search_table(
                    &format!(
                        "Table 5: Approximate {}-NN, Encrypted M-Index (YEAST{})",
                        sizes.k,
                        shard_note(args.shards)
                    ),
                    &rows,
                    true,
                );
            }
            6 => {
                let ds = cophir();
                let rows = encrypted_rows(
                    &ds,
                    &args.scale.cophir_cand_sizes(sizes.cophir_n),
                    sizes.queries,
                    sizes.k,
                    args.shards,
                );
                print_search_table(
                    &format!(
                        "Table 6: Approximate {}-NN, Encrypted M-Index (CoPhIR{})",
                        sizes.k,
                        shard_note(args.shards)
                    ),
                    &rows,
                    true,
                );
            }
            7 => {
                let ds = yeast();
                let rows = search_plain(
                    &ds,
                    &args.scale.yeast_cand_sizes(),
                    sizes.queries,
                    sizes.k,
                    SEED,
                );
                print_search_table(
                    &format!("Table 7: Approximate {}-NN, basic M-Index (YEAST)", sizes.k),
                    &rows,
                    false,
                );
            }
            8 => {
                let ds = cophir();
                let rows = search_plain(
                    &ds,
                    &args.scale.cophir_cand_sizes(sizes.cophir_n),
                    sizes.queries,
                    sizes.k,
                    SEED,
                );
                print_search_table(
                    &format!(
                        "Table 8: Approximate {}-NN, basic M-Index (CoPhIR)",
                        sizes.k
                    ),
                    &rows,
                    false,
                );
            }
            9 => table9(&yeast(), sizes.queries),
            other => eprintln!("no table {other} in the paper"),
        }
    }

    for a in &args.ablations {
        match a.as_str() {
            "pivots" => {
                let ds = yeast();
                let rows =
                    ablation_pivots(&ds, &[10, 30, 50, 100], 600, sizes.queries, sizes.k, SEED);
                let mut t = Table::new(
                    "Ablation: pivot count (YEAST, CandSize 600)",
                    rows.iter().map(|(n, _)| n.to_string()).collect(),
                );
                t.row(
                    "Recall [%]",
                    rows.iter()
                        .map(|(_, r)| format!("{:.2}", r.recall))
                        .collect(),
                );
                t.row(
                    "Client time [s]",
                    rows.iter().map(|(_, r)| secs(r.costs.client)).collect(),
                );
                t.row(
                    "Dist. comp. / query",
                    rows.iter()
                        .map(|(_, r)| r.costs.distance_computations.to_string())
                        .collect(),
                );
                t.row(
                    "Communication cost [kB]",
                    rows.iter()
                        .map(|(_, r)| kb(r.costs.bytes_sent + r.costs.bytes_received))
                        .collect(),
                );
                println!("{}", t.render());
            }
            "strategy" => {
                let ds = yeast();
                let rows = ablation_strategy(&ds, 600, sizes.queries, sizes.k, SEED);
                let mut t = Table::new(
                    "Ablation: routing strategy (YEAST, CandSize 600) — privacy/efficiency trade of §4.2",
                    rows.iter().map(|(l, _)| l.to_string()).collect(),
                );
                t.row(
                    "Recall [%]",
                    rows.iter()
                        .map(|(_, r)| format!("{:.2}", r.recall))
                        .collect(),
                );
                t.row(
                    "Bytes sent / query",
                    rows.iter()
                        .map(|(_, r)| r.costs.bytes_sent.to_string())
                        .collect(),
                );
                t.row(
                    "Overall time [s]",
                    rows.iter().map(|(_, r)| secs(r.costs.overall())).collect(),
                );
                println!("{}", t.render());
                println!(
                    "(permutation routing leaks no distance values; distances enable pivot\n filtering and precise range queries — see DESIGN.md)\n"
                );
            }
            "transform" => {
                let ds = yeast();
                let rows = ablation_transform(&ds, &[0.05, 0.1, 0.2], sizes.queries.min(20), SEED);
                let mut t = Table::new(
                    "Ablation: level-4 distance transformation (YEAST range queries)",
                    rows.iter().map(|(r, _, _)| format!("r={r:.1}")).collect(),
                );
                t.row(
                    "Candidates (plain routing)",
                    rows.iter().map(|(_, b, _)| b.to_string()).collect(),
                );
                t.row(
                    "Candidates (transformed)",
                    rows.iter().map(|(_, _, tr)| tr.to_string()).collect(),
                );
                t.row(
                    "Inflation",
                    rows.iter()
                        .map(|(_, b, tr)| format!("{:.2}x", *tr as f64 / (*b).max(1) as f64))
                        .collect(),
                );
                println!("{}", t.render());
                println!("(results verified identical; inflation is the price of hiding the\n distance distribution — paper §6 future work)\n");
            }
            "k" => {
                let ds = yeast();
                let rows = ablation_k(&ds, &[1, 10, 30, 50], 600, sizes.queries, SEED);
                let mut t = Table::new(
                    "Ablation: k sweep (YEAST, CandSize 600) — paper §5.3 \"results were similar\"",
                    rows.iter().map(|(k, _)| k.to_string()).collect(),
                );
                t.row(
                    "Recall [%]",
                    rows.iter().map(|(_, r)| format!("{r:.2}")).collect(),
                );
                println!("{}", t.render());
            }
            "network" => {
                let ds = yeast();
                let rows = ablation_network(&ds, 600, sizes.queries, sizes.k, SEED);
                let mut t = Table::new(
                    "Ablation: network model (YEAST, CandSize 600)",
                    rows.iter().map(|(l, _, _)| l.to_string()).collect(),
                );
                t.row(
                    "Encrypted overall [s]",
                    rows.iter().map(|(_, e, _)| secs(*e)).collect(),
                );
                t.row(
                    "Plain overall [s]",
                    rows.iter().map(|(_, _, p)| secs(*p)).collect(),
                );
                println!("{}", t.render());
                println!("(the encrypted variant's candidate transfer dominates as latency and\n bandwidth degrade — the paper's loopback setting is its best case)\n");
            }
            other => eprintln!("unknown ablation {other} (pivots|strategy|transform|k|network)"),
        }
    }
}

fn shard_note(shards: usize) -> String {
    if shards > 1 {
        format!(", {shards} shards")
    } else {
        String::new()
    }
}

/// Encrypted-search rows against a single index or, with `--shards N`, a
/// hash-routed sharded deployment behind the same wire.
fn encrypted_rows(
    ds: &Dataset,
    cand_sizes: &[usize],
    queries: usize,
    k: usize,
    shards: usize,
) -> Vec<SearchRow> {
    if shards > 1 {
        search_encrypted_sharded(ds, cand_sizes, queries, k, SEED, shards)
    } else {
        search_encrypted(ds, cand_sizes, queries, k, SEED)
    }
}

fn table1(datasets: &[Dataset]) {
    let mut t = Table::new(
        "Table 1: Data sets summary",
        vec![
            "# of records".into(),
            "dim".into(),
            "distance".into(),
            "distance distribution".into(),
        ],
    );
    for ds in datasets {
        let hist = DistanceHistogram::sample(&ds.vectors, &ds.metric, 1000, 16, 1);
        t.row(
            ds.name.clone(),
            vec![
                ds.len().to_string(),
                ds.dim().to_string(),
                ds.metric.name().to_string(),
                hist.sparkline(),
            ],
        );
    }
    println!("{}", t.render());
}

fn table2() {
    let mut t = Table::new(
        "Table 2: M-Index parameters",
        vec![
            "Bucket capacity".into(),
            "Storage type".into(),
            "# of pivots".into(),
        ],
    );
    for (name, cfg, storage) in [
        (
            "YEAST",
            simcloud_mindex::MIndexConfig::yeast(),
            "Memory storage",
        ),
        (
            "HUMAN",
            simcloud_mindex::MIndexConfig::human(),
            "Memory storage",
        ),
        (
            "CoPhIR",
            simcloud_mindex::MIndexConfig::cophir(),
            "Disk storage",
        ),
    ] {
        t.row(
            name,
            vec![
                cfg.bucket_capacity.to_string(),
                storage.into(),
                cfg.num_pivots.to_string(),
            ],
        );
    }
    println!("{}", t.render());
}

fn table3_4(datasets: &[Dataset], encrypted: bool) {
    let title = if encrypted {
        "Table 3: Index construction of encrypted M-Index"
    } else {
        "Table 4: Index construction of the basic (non-encrypted) M-Index"
    };
    let mut t = Table::new(title, datasets.iter().map(|d| d.name.clone()).collect());
    let reports: Vec<_> = datasets
        .iter()
        .map(|ds| {
            if encrypted {
                construction_encrypted(ds, SEED)
            } else {
                construction_plain(ds, SEED)
            }
        })
        .collect();
    t.row(
        "Client time [s]",
        reports.iter().map(|r| secs(r.client)).collect(),
    );
    if encrypted {
        t.row(
            "Encryption time [s]",
            reports.iter().map(|r| secs(r.encryption)).collect(),
        );
    }
    t.row(
        "Dist. comp. time [s]",
        reports.iter().map(|r| secs(r.distance)).collect(),
    );
    t.row(
        "Server time [s]",
        reports.iter().map(|r| secs(r.server)).collect(),
    );
    t.row(
        "Communication time [s]",
        reports.iter().map(|r| secs(r.communication)).collect(),
    );
    t.row(
        "Overall time [s]",
        reports.iter().map(|r| secs(r.overall())).collect(),
    );
    println!("{}", t.render());
}

fn print_search_table(title: &str, rows: &[SearchRow], encrypted: bool) {
    let mut t = Table::new(
        title,
        rows.iter().map(|r| r.cand_size.to_string()).collect(),
    );
    if encrypted {
        t.row(
            "Client time [s]",
            rows.iter().map(|r| secs(r.costs.client)).collect(),
        );
        t.row(
            "Decryption time [s]",
            rows.iter().map(|r| secs(r.costs.decryption)).collect(),
        );
        t.row(
            "Dist. comp. time [s]",
            rows.iter().map(|r| secs(r.costs.distance)).collect(),
        );
        t.row(
            "Server time [s]",
            rows.iter().map(|r| secs(r.costs.server)).collect(),
        );
    } else {
        t.row(
            "Client time [s]",
            rows.iter().map(|_| "–".to_string()).collect(),
        );
        t.row(
            "Server time [s]",
            rows.iter().map(|r| secs(r.costs.server)).collect(),
        );
        t.row(
            "Dist. comp. time [s]",
            rows.iter().map(|r| secs(r.costs.distance)).collect(),
        );
    }
    t.row(
        "Communication time [s]",
        rows.iter().map(|r| secs(r.costs.communication)).collect(),
    );
    t.row(
        "Overall time [s]",
        rows.iter().map(|r| secs(r.costs.overall())).collect(),
    );
    t.row(
        "Recall [%]",
        rows.iter().map(|r| format!("{:.2}", r.recall)).collect(),
    );
    t.row(
        "Communication cost [kB]",
        rows.iter()
            .map(|r| kb(r.costs.bytes_sent + r.costs.bytes_received))
            .collect(),
    );
    println!("{}", t.render());
}

fn table9(ds: &Dataset, queries: usize) {
    let rows = comparison_1nn(ds, queries, SEED);
    let mut t = Table::new(
        "Table 9: Approximate 1-NN comparison (YEAST, held-out queries)",
        rows.iter().map(|r| r.name.to_string()).collect(),
    );
    t.row(
        "Client time [ms]",
        rows.iter().map(|r| millis(r.costs.client)).collect(),
    );
    t.row(
        "Decryption time [ms]",
        rows.iter().map(|r| millis(r.costs.decryption)).collect(),
    );
    t.row(
        "Dist. comp. time [ms]",
        rows.iter().map(|r| millis(r.costs.distance)).collect(),
    );
    t.row(
        "Server time [ms]",
        rows.iter().map(|r| millis(r.costs.server)).collect(),
    );
    t.row(
        "Communication time [ms]",
        rows.iter().map(|r| millis(r.costs.communication)).collect(),
    );
    t.row(
        "Overall time [ms]",
        rows.iter().map(|r| millis(r.costs.overall())).collect(),
    );
    t.row(
        "Recall [%]",
        rows.iter().map(|r| format!("{:.1}", r.recall)).collect(),
    );
    t.row(
        "Communication cost [kB]",
        rows.iter()
            .map(|r| kb(r.costs.bytes_sent + r.costs.bytes_received))
            .collect(),
    );
    t.row(
        "Exact?",
        rows.iter()
            .map(|r| if r.exact { "yes" } else { "approx" }.into())
            .collect(),
    );
    t.row(
        "Construction time [s]",
        rows.iter().map(|r| secs(r.build.overall())).collect(),
    );
    println!("{}", t.render());
}

// keep Duration import used in all cfg paths
#[allow(dead_code)]
fn _unused(_: Duration) {}
