//! Steady-state search throughput — the ROADMAP perf target.
//!
//! The seed search bench rebuilt the index inside every iteration, so its
//! numbers mixed construction into the search cost. Here the index is built
//! **once**, then encrypted approximate k-NN queries are driven against it
//! and reported as queries/second:
//!
//! * [`steady_state_encrypted`] — `threads` clients share one server
//!   through the `&self` handler path (1 thread = the classic
//!   single-client number, 4 threads = the concurrent serving mode);
//! * [`steady_state_batch`] — the batch query API: all queries of a chunk
//!   travel in one round trip.
//!
//! Every runner works against a [`SteadyServer`] — a single `CloudServer`
//! or a `ShardedCloudServer` behind the same wire — so the sharded
//! deployment is benchmarked by the *same* code paths (`--shards N` on the
//! harnesses picks the variant).
//!
//! Throughput is end-to-end per query: pivot distances + server candidate
//! selection + decryption + refinement, i.e. the paper's whole Alg. 2 loop.

use std::sync::Arc;
use std::time::{Duration, Instant};

use simcloud_core::{
    client_for, connect_tcp, ClientConfig, CloudServer, CostReport, EncryptedClient, SecretKey,
    ServerConfig,
};
use simcloud_datasets::{Dataset, DatasetMetric, QueryWorkload};
use simcloud_metric::PivotSelection;
use simcloud_shard::{
    client_for_sharded, HashRouter, PivotRouter, ShardRouter, ShardedCloudServer,
};
use simcloud_storage::MemoryStore;
use simcloud_transport::{tcp::TcpServerHandle, Transport};

use crate::experiments::BULK;

/// Result of one steady-state run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SteadyState {
    /// Query threads driving the shared server.
    pub threads: usize,
    /// Total queries executed across threads.
    pub queries: u64,
    /// Wall-clock time of the query phase (construction excluded).
    pub elapsed: Duration,
    /// Candidates received across all queries.
    pub candidates: u64,
    /// Candidates actually unsealed — `< candidates` whenever the lazy
    /// refinement's early exit fired.
    pub decrypted: u64,
    /// Bytes sent client → server across all queries (incl. frame headers).
    pub bytes_sent: u64,
    /// Bytes received server → client across all queries — the wire-cost
    /// side of the two-phase fetch trade-off.
    pub bytes_received: u64,
    /// Sealed objects pulled in phase-2 `FetchObjects` round trips.
    pub fetched: u64,
    /// Phase-2 round trips issued.
    pub fetch_requests: u64,
}

impl SteadyState {
    /// Aggregate throughput in queries per second.
    pub fn queries_per_second(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64()
    }

    /// Mean candidates decrypted per query.
    pub fn mean_decrypted(&self) -> f64 {
        self.decrypted as f64 / self.queries.max(1) as f64
    }

    /// Mean candidates received per query.
    pub fn mean_candidates(&self) -> f64 {
        self.candidates as f64 / self.queries.max(1) as f64
    }

    /// Mean response bytes per query — the number the two-phase wire is
    /// judged on.
    pub fn bytes_received_per_query(&self) -> f64 {
        self.bytes_received as f64 / self.queries.max(1) as f64
    }

    /// Mean request bytes per query.
    pub fn bytes_sent_per_query(&self) -> f64 {
        self.bytes_sent as f64 / self.queries.max(1) as f64
    }

    /// Mean phase-2 objects fetched per query.
    pub fn mean_fetched(&self) -> f64 {
        self.fetched as f64 / self.queries.max(1) as f64
    }

    /// Mean phase-2 round trips per query.
    pub fn mean_fetch_requests(&self) -> f64 {
        self.fetch_requests as f64 / self.queries.max(1) as f64
    }

    /// Folds one client's accumulated costs into this run's totals.
    fn absorb(&mut self, costs: &CostReport) {
        self.candidates += costs.candidates;
        self.decrypted += costs.decrypted;
        self.bytes_sent += costs.bytes_sent;
        self.bytes_received += costs.bytes_received;
        self.fetched += costs.fetched;
        self.fetch_requests += costs.fetch_requests;
    }
}

/// Which shard router a sharded steady-state deployment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterKind {
    /// Uniform id hashing.
    Hash,
    /// Nearest-global-pivot (Voronoi) placement.
    Pivot,
}

impl RouterKind {
    /// Builds the router.
    pub fn build(self) -> Box<dyn ShardRouter> {
        match self {
            RouterKind::Hash => Box::new(HashRouter),
            RouterKind::Pivot => Box::new(PivotRouter),
        }
    }

    /// Stable label for bench output.
    pub fn label(self) -> &'static str {
        match self {
            RouterKind::Hash => "hash",
            RouterKind::Pivot => "pivot",
        }
    }
}

/// Parses `--shards N` from the process arguments (default 1 = the single
/// index server) — one definition shared by the bench harnesses. An
/// explicit but invalid value (0, non-numeric) panics like `repro` does,
/// instead of silently benchmarking the single-index server.
pub fn shards_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--shards") {
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .filter(|&n| n >= 1)
            .expect("--shards N (N >= 1)"),
        None => 1,
    }
}

/// JSON-key suffix distinguishing sharded bench rows (`"/shardsN"`). Empty
/// for the single-index default so previously committed keys stay stable.
pub fn shards_suffix(shards: usize) -> String {
    if shards > 1 {
        format!("/shards{shards}")
    } else {
        String::new()
    }
}

/// A steady-state server under test: one index or N shards, same wire.
#[derive(Clone, Debug)]
pub enum SteadyServer {
    /// The classic single `CloudServer`.
    Single(Arc<CloudServer<MemoryStore>>),
    /// A `ShardedCloudServer` (scatter-gather).
    Sharded(Arc<ShardedCloudServer<MemoryStore>>),
}

impl SteadyServer {
    /// Serves this server on a concurrent TCP loopback socket.
    pub fn serve_tcp(&self) -> std::io::Result<TcpServerHandle> {
        match self {
            SteadyServer::Single(s) => simcloud_core::serve_tcp_concurrent(Arc::clone(s)),
            SteadyServer::Sharded(s) => simcloud_shard::serve_tcp_concurrent_sharded(Arc::clone(s)),
        }
    }

    /// Shard count (1 for the single server).
    pub fn shards(&self) -> usize {
        match self {
            SteadyServer::Single(_) => 1,
            SteadyServer::Sharded(s) => s.index().shard_count(),
        }
    }
}

/// A pre-built encrypted deployment: shared server + the key/workload
/// needed to drive queries against it.
pub struct PreBuilt {
    /// The shared server holding the fully built index.
    pub server: SteadyServer,
    /// The data owner's key (clients clone it).
    pub key: SecretKey,
    /// Member queries drawn from the indexed data.
    pub workload: QueryWorkload,
    /// Dataset the index was built from.
    pub dataset: Dataset,
}

impl std::fmt::Debug for PreBuilt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreBuilt").finish_non_exhaustive()
    }
}

fn knn_rounds<T: Transport>(
    client: &mut EncryptedClient<DatasetMetric, T>,
    workload: &QueryWorkload,
    rounds: usize,
    k: usize,
    cand_size: usize,
) -> CostReport {
    for _ in 0..rounds {
        for q in &workload.queries {
            let (res, _) = client.knn_approx(q, k, cand_size).expect("search");
            std::hint::black_box(res);
        }
    }
    client.total_costs()
}

fn insert_all<T: Transport>(
    client: &mut EncryptedClient<DatasetMetric, T>,
    vectors: &[simcloud_metric::Vector],
) {
    for chunk in crate::experiments::id_objects(vectors).chunks(BULK) {
        client.insert_bulk(chunk).expect("insert");
    }
}

fn prebuild_into(ds: Dataset, queries: usize, seed: u64, server: SteadyServer) -> PreBuilt {
    let cfg = crate::experiments::dataset_config(&ds);
    let (key, _) = SecretKey::generate(
        &ds.vectors,
        cfg.num_pivots,
        &ds.metric,
        PivotSelection::Random,
        seed,
    );
    match &server {
        SteadyServer::Single(s) => {
            let mut owner = client_for(
                key.clone(),
                ds.metric.clone(),
                Arc::clone(s),
                ClientConfig::distances(),
            )
            .with_rng_seed(seed ^ 1);
            insert_all(&mut owner, &ds.vectors);
        }
        SteadyServer::Sharded(s) => {
            let mut owner = client_for_sharded(
                key.clone(),
                ds.metric.clone(),
                Arc::clone(s),
                ClientConfig::distances(),
            )
            .with_rng_seed(seed ^ 1);
            insert_all(&mut owner, &ds.vectors);
        }
    }
    let workload = QueryWorkload::members(&ds.vectors, queries, seed ^ 3);
    PreBuilt {
        server,
        key,
        workload,
        dataset: ds,
    }
}

/// Builds the index once (outside any timed region) with the default
/// server configuration (everything inlined — single-phase responses).
pub fn prebuild(ds: Dataset, queries: usize, seed: u64) -> PreBuilt {
    prebuild_with(ds, queries, seed, ServerConfig::default())
}

/// [`prebuild`] with an explicit [`ServerConfig`] — the wire bench uses a
/// byte-budgeted server to measure the two-phase candidate fetch.
pub fn prebuild_with(
    ds: Dataset,
    queries: usize,
    seed: u64,
    server_config: ServerConfig,
) -> PreBuilt {
    let cfg = crate::experiments::dataset_config(&ds);
    let server = SteadyServer::Single(Arc::new(
        CloudServer::with_config(cfg, server_config, MemoryStore::new()).expect("valid config"),
    ));
    prebuild_into(ds, queries, seed, server)
}

/// Pre-builds a **sharded** deployment: same data, same key derivation,
/// same wire — `shards` independent M-Index shards behind the router.
pub fn prebuild_sharded(
    ds: Dataset,
    queries: usize,
    seed: u64,
    server_config: ServerConfig,
    shards: usize,
    router: RouterKind,
) -> PreBuilt {
    let cfg = crate::experiments::dataset_config(&ds);
    let server = SteadyServer::Sharded(Arc::new(
        ShardedCloudServer::with_config(
            cfg,
            server_config,
            router.build(),
            simcloud_shard::memory_stores(shards),
        )
        .expect("valid config"),
    ));
    prebuild_into(ds, queries, seed, server)
}

/// Runs `rounds` passes over the workload from `threads` concurrent
/// clients, all sharing `pre.server` through the lock-free read path.
/// Returns the aggregate steady-state throughput.
pub fn steady_state_encrypted(
    pre: &PreBuilt,
    cand_size: usize,
    k: usize,
    threads: usize,
    rounds: usize,
    seed: u64,
) -> SteadyState {
    steady_state_encrypted_with(
        pre,
        &ClientConfig::distances(),
        cand_size,
        k,
        threads,
        rounds,
        seed,
    )
}

/// [`steady_state_encrypted`] with an explicit client configuration — the
/// refine bench uses this to pit lazy (decrypt-on-demand) against eager
/// refinement over identical server state.
#[allow(clippy::too_many_arguments)]
pub fn steady_state_encrypted_with(
    pre: &PreBuilt,
    config: &ClientConfig,
    cand_size: usize,
    k: usize,
    threads: usize,
    rounds: usize,
    seed: u64,
) -> SteadyState {
    // One untimed pass over the workload first: a freshly built server pays
    // first-touch costs (page faults, lazy allocations, cold caches) on its
    // first queries, and a *steady-state* measurement should not charge
    // them to round one.
    {
        let server = pre.server.clone();
        let key = pre.key.clone();
        let metric = pre.dataset.metric.clone();
        match server {
            SteadyServer::Single(s) => knn_rounds(
                &mut client_for(key, metric, s, config.clone()).with_rng_seed(seed),
                &pre.workload,
                1,
                k,
                cand_size,
            ),
            SteadyServer::Sharded(s) => knn_rounds(
                &mut client_for_sharded(key, metric, s, config.clone()).with_rng_seed(seed),
                &pre.workload,
                1,
                k,
                cand_size,
            ),
        };
    }
    let start = Instant::now();
    let per_thread: u64 = (rounds * pre.workload.len()) as u64;
    let totals: Vec<CostReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let server = pre.server.clone();
                let key = pre.key.clone();
                let metric = pre.dataset.metric.clone();
                let workload = &pre.workload;
                let config = config.clone();
                scope.spawn(move || match server {
                    SteadyServer::Single(s) => knn_rounds(
                        &mut client_for(key, metric, s, config).with_rng_seed(seed ^ t as u64),
                        workload,
                        rounds,
                        k,
                        cand_size,
                    ),
                    SteadyServer::Sharded(s) => knn_rounds(
                        &mut client_for_sharded(key, metric, s, config)
                            .with_rng_seed(seed ^ t as u64),
                        workload,
                        rounds,
                        k,
                        cand_size,
                    ),
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("query thread"))
            .collect()
    });
    let mut out = SteadyState {
        threads,
        queries: per_thread * threads as u64,
        elapsed: start.elapsed(),
        ..SteadyState::default()
    };
    for costs in &totals {
        out.absorb(costs);
    }
    out
}

/// Single-threaded steady state over a **real TCP loopback socket**: the
/// server (single or sharded — the wire is the same) is exposed with its
/// concurrent TCP front end and one TCP client drives the workload, so
/// every phase-1 answer and phase-2 fetch is a real socket round trip.
pub fn steady_state_encrypted_tcp(
    pre: &PreBuilt,
    config: &ClientConfig,
    cand_size: usize,
    k: usize,
    rounds: usize,
) -> SteadyState {
    let handle = pre.server.serve_tcp().expect("tcp server");
    let mut client = connect_tcp(
        pre.key.clone(),
        pre.dataset.metric.clone(),
        handle.addr(),
        config.clone(),
    )
    .expect("tcp client");
    let start = Instant::now();
    let costs = knn_rounds(&mut client, &pre.workload, rounds, k, cand_size);
    let elapsed = start.elapsed();
    let mut out = SteadyState {
        threads: 1,
        queries: (rounds * pre.workload.len()) as u64,
        elapsed,
        ..SteadyState::default()
    };
    out.absorb(&costs);
    drop(client);
    handle.shutdown();
    out
}

fn batch_rounds<T: Transport>(
    client: &mut EncryptedClient<DatasetMetric, T>,
    workload: &QueryWorkload,
    rounds: usize,
    k: usize,
    cand_size: usize,
    batch: usize,
) -> CostReport {
    for _ in 0..rounds {
        for chunk in workload.queries.chunks(batch.max(1)) {
            let (res, _) = client
                .knn_approx_batch(chunk, k, cand_size)
                .expect("batch search");
            for per_query in res {
                std::hint::black_box(per_query.expect("batch query"));
            }
        }
    }
    client.total_costs()
}

/// Single-threaded batch-API variant: the whole workload travels in
/// `ceil(len/batch)` round trips per round instead of one per query.
pub fn steady_state_batch(
    pre: &PreBuilt,
    cand_size: usize,
    k: usize,
    batch: usize,
    rounds: usize,
    seed: u64,
) -> SteadyState {
    // Clients are built *outside* the timed region — the run measures the
    // steady-state batch loop, not key cloning or transport setup.
    let (costs, elapsed) = match &pre.server {
        SteadyServer::Single(s) => {
            let mut client = client_for(
                pre.key.clone(),
                pre.dataset.metric.clone(),
                Arc::clone(s),
                ClientConfig::distances(),
            )
            .with_rng_seed(seed ^ 0xba7c);
            let start = Instant::now();
            let costs = batch_rounds(&mut client, &pre.workload, rounds, k, cand_size, batch);
            (costs, start.elapsed())
        }
        SteadyServer::Sharded(s) => {
            let mut client = client_for_sharded(
                pre.key.clone(),
                pre.dataset.metric.clone(),
                Arc::clone(s),
                ClientConfig::distances(),
            )
            .with_rng_seed(seed ^ 0xba7c);
            let start = Instant::now();
            let costs = batch_rounds(&mut client, &pre.workload, rounds, k, cand_size, batch);
            (costs, start.elapsed())
        }
    };
    let mut out = SteadyState {
        threads: 1,
        queries: (rounds * pre.workload.len()) as u64,
        elapsed,
        ..SteadyState::default()
    };
    out.absorb(&costs);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Which;

    #[test]
    fn steady_state_smoke() {
        let pre = prebuild(Which::Yeast.dataset(300, 11), 4, 5);
        let single = steady_state_encrypted(&pre, 50, 10, 1, 1, 7);
        assert_eq!(single.queries, 4);
        assert!(single.queries_per_second() > 0.0);
        let multi = steady_state_encrypted(&pre, 50, 10, 2, 1, 7);
        assert_eq!(multi.queries, 8);
        let batch = steady_state_batch(&pre, 50, 10, 4, 1, 7);
        assert_eq!(batch.queries, 4);
    }

    #[test]
    fn steady_state_sharded_smoke() {
        let pre = prebuild_sharded(
            Which::Yeast.dataset(300, 11),
            4,
            5,
            ServerConfig::default(),
            4,
            RouterKind::Hash,
        );
        assert_eq!(pre.server.shards(), 4);
        let run = steady_state_encrypted(&pre, 50, 10, 2, 1, 7);
        assert_eq!(run.queries, 8);
        assert!(run.candidates > 0);
        let batch = steady_state_batch(&pre, 50, 10, 4, 1, 7);
        assert_eq!(batch.queries, 4);
    }
}
