//! Steady-state search throughput — the ROADMAP perf target.
//!
//! The seed search bench rebuilt the index inside every iteration, so its
//! numbers mixed construction into the search cost. Here the index is built
//! **once**, then encrypted approximate k-NN queries are driven against it
//! and reported as queries/second:
//!
//! * [`steady_state_encrypted`] — `threads` clients share one
//!   `Arc<CloudServer>` through the `&self` handler path (1 thread = the
//!   classic single-client number, 4 threads = the concurrent serving
//!   mode);
//! * [`steady_state_batch`] — the batch query API: all queries of a chunk
//!   travel in one round trip.
//!
//! Throughput is end-to-end per query: pivot distances + server candidate
//! selection + decryption + refinement, i.e. the paper's whole Alg. 2 loop.

use std::sync::Arc;
use std::time::{Duration, Instant};

use simcloud_core::{client_for, connect_tcp, ClientConfig, CloudServer, SecretKey, ServerConfig};
use simcloud_datasets::{Dataset, QueryWorkload};
use simcloud_metric::{ObjectId, PivotSelection};
use simcloud_storage::MemoryStore;

use crate::experiments::BULK;

/// Result of one steady-state run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SteadyState {
    /// Query threads driving the shared server.
    pub threads: usize,
    /// Total queries executed across threads.
    pub queries: u64,
    /// Wall-clock time of the query phase (construction excluded).
    pub elapsed: Duration,
    /// Candidates received across all queries.
    pub candidates: u64,
    /// Candidates actually unsealed — `< candidates` whenever the lazy
    /// refinement's early exit fired.
    pub decrypted: u64,
    /// Bytes sent client → server across all queries (incl. frame headers).
    pub bytes_sent: u64,
    /// Bytes received server → client across all queries — the wire-cost
    /// side of the two-phase fetch trade-off.
    pub bytes_received: u64,
    /// Sealed objects pulled in phase-2 `FetchObjects` round trips.
    pub fetched: u64,
    /// Phase-2 round trips issued.
    pub fetch_requests: u64,
}

impl SteadyState {
    /// Aggregate throughput in queries per second.
    pub fn queries_per_second(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64()
    }

    /// Mean candidates decrypted per query.
    pub fn mean_decrypted(&self) -> f64 {
        self.decrypted as f64 / self.queries.max(1) as f64
    }

    /// Mean candidates received per query.
    pub fn mean_candidates(&self) -> f64 {
        self.candidates as f64 / self.queries.max(1) as f64
    }

    /// Mean response bytes per query — the number the two-phase wire is
    /// judged on.
    pub fn bytes_received_per_query(&self) -> f64 {
        self.bytes_received as f64 / self.queries.max(1) as f64
    }

    /// Mean request bytes per query.
    pub fn bytes_sent_per_query(&self) -> f64 {
        self.bytes_sent as f64 / self.queries.max(1) as f64
    }

    /// Mean phase-2 objects fetched per query.
    pub fn mean_fetched(&self) -> f64 {
        self.fetched as f64 / self.queries.max(1) as f64
    }

    /// Mean phase-2 round trips per query.
    pub fn mean_fetch_requests(&self) -> f64 {
        self.fetch_requests as f64 / self.queries.max(1) as f64
    }

    /// Folds one client's accumulated costs into this run's totals.
    fn absorb(&mut self, costs: &simcloud_core::CostReport) {
        self.candidates += costs.candidates;
        self.decrypted += costs.decrypted;
        self.bytes_sent += costs.bytes_sent;
        self.bytes_received += costs.bytes_received;
        self.fetched += costs.fetched;
        self.fetch_requests += costs.fetch_requests;
    }
}

/// A pre-built encrypted deployment: shared server + the key/workload
/// needed to drive queries against it.
pub struct PreBuilt {
    /// The shared server holding the fully built index.
    pub server: Arc<CloudServer<MemoryStore>>,
    /// The data owner's key (clients clone it).
    pub key: SecretKey,
    /// Member queries drawn from the indexed data.
    pub workload: QueryWorkload,
    /// Dataset the index was built from.
    pub dataset: Dataset,
}

/// Builds the index once (outside any timed region) with the default
/// server configuration (everything inlined — single-phase responses).
pub fn prebuild(ds: Dataset, queries: usize, seed: u64) -> PreBuilt {
    prebuild_with(ds, queries, seed, ServerConfig::default())
}

/// [`prebuild`] with an explicit [`ServerConfig`] — the wire bench uses a
/// byte-budgeted server to measure the two-phase candidate fetch.
pub fn prebuild_with(
    ds: Dataset,
    queries: usize,
    seed: u64,
    server_config: ServerConfig,
) -> PreBuilt {
    let cfg = crate::experiments::dataset_config(&ds);
    let (key, _) = SecretKey::generate(
        &ds.vectors,
        cfg.num_pivots,
        &ds.metric,
        PivotSelection::Random,
        seed,
    );
    let server = Arc::new(
        CloudServer::with_config(cfg, server_config, MemoryStore::new()).expect("valid config"),
    );
    let mut owner = client_for(
        key.clone(),
        ds.metric.clone(),
        Arc::clone(&server),
        ClientConfig::distances(),
    )
    .with_rng_seed(seed ^ 1);
    let objects: Vec<(ObjectId, _)> = ds
        .vectors
        .iter()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v.clone()))
        .collect();
    for chunk in objects.chunks(BULK) {
        owner.insert_bulk(chunk).expect("insert");
    }
    let workload = QueryWorkload::members(&ds.vectors, queries, seed ^ 3);
    PreBuilt {
        server,
        key,
        workload,
        dataset: ds,
    }
}

/// Runs `rounds` passes over the workload from `threads` concurrent
/// clients, all sharing `pre.server` through the lock-free read path.
/// Returns the aggregate steady-state throughput.
pub fn steady_state_encrypted(
    pre: &PreBuilt,
    cand_size: usize,
    k: usize,
    threads: usize,
    rounds: usize,
    seed: u64,
) -> SteadyState {
    steady_state_encrypted_with(
        pre,
        &ClientConfig::distances(),
        cand_size,
        k,
        threads,
        rounds,
        seed,
    )
}

/// [`steady_state_encrypted`] with an explicit client configuration — the
/// refine bench uses this to pit lazy (decrypt-on-demand) against eager
/// refinement over identical server state.
#[allow(clippy::too_many_arguments)]
pub fn steady_state_encrypted_with(
    pre: &PreBuilt,
    config: &ClientConfig,
    cand_size: usize,
    k: usize,
    threads: usize,
    rounds: usize,
    seed: u64,
) -> SteadyState {
    let start = Instant::now();
    let per_thread: u64 = (rounds * pre.workload.len()) as u64;
    let totals: Vec<simcloud_core::CostReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let server = Arc::clone(&pre.server);
                let key = pre.key.clone();
                let metric = pre.dataset.metric.clone();
                let workload = &pre.workload;
                let config = config.clone();
                scope.spawn(move || {
                    let mut client =
                        client_for(key, metric, server, config).with_rng_seed(seed ^ t as u64);
                    for _ in 0..rounds {
                        for q in &workload.queries {
                            let (res, _) = client.knn_approx(q, k, cand_size).expect("search");
                            std::hint::black_box(res);
                        }
                    }
                    client.total_costs()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("query thread"))
            .collect()
    });
    let mut out = SteadyState {
        threads,
        queries: per_thread * threads as u64,
        elapsed: start.elapsed(),
        ..SteadyState::default()
    };
    for costs in &totals {
        out.absorb(costs);
    }
    out
}

/// Single-threaded steady state over a **real TCP loopback socket**: the
/// shared server is exposed with `serve_tcp_concurrent` and one TCP client
/// drives the workload — every phase-1 answer and phase-2 fetch is a real
/// socket round trip, so the q/s cost of the extra fetch hops (and the
/// byte savings) are measured, not modelled.
pub fn steady_state_encrypted_tcp(
    pre: &PreBuilt,
    config: &ClientConfig,
    cand_size: usize,
    k: usize,
    rounds: usize,
) -> SteadyState {
    let handle = simcloud_core::serve_tcp_concurrent(Arc::clone(&pre.server)).expect("tcp server");
    let mut client = connect_tcp(
        pre.key.clone(),
        pre.dataset.metric.clone(),
        handle.addr(),
        config.clone(),
    )
    .expect("tcp client");
    let start = Instant::now();
    for _ in 0..rounds {
        for q in &pre.workload.queries {
            let (res, _) = client.knn_approx(q, k, cand_size).expect("tcp search");
            std::hint::black_box(res);
        }
    }
    let elapsed = start.elapsed();
    let mut out = SteadyState {
        threads: 1,
        queries: (rounds * pre.workload.len()) as u64,
        elapsed,
        ..SteadyState::default()
    };
    out.absorb(&client.total_costs());
    drop(client);
    handle.shutdown();
    out
}

/// Single-threaded batch-API variant: the whole workload travels in
/// `ceil(len/batch)` round trips per round instead of one per query.
pub fn steady_state_batch(
    pre: &PreBuilt,
    cand_size: usize,
    k: usize,
    batch: usize,
    rounds: usize,
    seed: u64,
) -> SteadyState {
    let mut client = client_for(
        pre.key.clone(),
        pre.dataset.metric.clone(),
        Arc::clone(&pre.server),
        ClientConfig::distances(),
    )
    .with_rng_seed(seed ^ 0xba7c);
    let start = Instant::now();
    for _ in 0..rounds {
        for chunk in pre.workload.queries.chunks(batch.max(1)) {
            let (res, _) = client
                .knn_approx_batch(chunk, k, cand_size)
                .expect("batch search");
            for per_query in res {
                std::hint::black_box(per_query.expect("batch query"));
            }
        }
    }
    let elapsed = start.elapsed();
    let mut out = SteadyState {
        threads: 1,
        queries: (rounds * pre.workload.len()) as u64,
        elapsed,
        ..SteadyState::default()
    };
    out.absorb(&client.total_costs());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Which;

    #[test]
    fn steady_state_smoke() {
        let pre = prebuild(Which::Yeast.dataset(300, 11), 4, 5);
        let single = steady_state_encrypted(&pre, 50, 10, 1, 1, 7);
        assert_eq!(single.queries, 4);
        assert!(single.queries_per_second() > 0.0);
        let multi = steady_state_encrypted(&pre, 50, 10, 2, 1, 7);
        assert_eq!(multi.queries, 8);
        let batch = steady_state_batch(&pre, 50, 10, 4, 1, 7);
        assert_eq!(batch.queries, 4);
    }
}
