//! Steady-state search throughput — the ROADMAP perf target.
//!
//! The seed search bench rebuilt the index inside every iteration, so its
//! numbers mixed construction into the search cost. Here the index is built
//! **once**, then encrypted approximate k-NN queries are driven against it
//! and reported as queries/second:
//!
//! * [`steady_state_encrypted`] — `threads` clients share one
//!   `Arc<CloudServer>` through the `&self` handler path (1 thread = the
//!   classic single-client number, 4 threads = the concurrent serving
//!   mode);
//! * [`steady_state_batch`] — the batch query API: all queries of a chunk
//!   travel in one round trip.
//!
//! Throughput is end-to-end per query: pivot distances + server candidate
//! selection + decryption + refinement, i.e. the paper's whole Alg. 2 loop.

use std::sync::Arc;
use std::time::{Duration, Instant};

use simcloud_core::{client_for, ClientConfig, CloudServer, SecretKey};
use simcloud_datasets::{Dataset, QueryWorkload};
use simcloud_metric::{ObjectId, PivotSelection};
use simcloud_storage::MemoryStore;

use crate::experiments::BULK;

/// Result of one steady-state run.
#[derive(Debug, Clone, Copy)]
pub struct SteadyState {
    /// Query threads driving the shared server.
    pub threads: usize,
    /// Total queries executed across threads.
    pub queries: u64,
    /// Wall-clock time of the query phase (construction excluded).
    pub elapsed: Duration,
    /// Candidates received across all queries.
    pub candidates: u64,
    /// Candidates actually unsealed — `< candidates` whenever the lazy
    /// refinement's early exit fired.
    pub decrypted: u64,
}

impl SteadyState {
    /// Aggregate throughput in queries per second.
    pub fn queries_per_second(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64()
    }

    /// Mean candidates decrypted per query.
    pub fn mean_decrypted(&self) -> f64 {
        self.decrypted as f64 / self.queries.max(1) as f64
    }

    /// Mean candidates received per query.
    pub fn mean_candidates(&self) -> f64 {
        self.candidates as f64 / self.queries.max(1) as f64
    }
}

/// A pre-built encrypted deployment: shared server + the key/workload
/// needed to drive queries against it.
pub struct PreBuilt {
    /// The shared server holding the fully built index.
    pub server: Arc<CloudServer<MemoryStore>>,
    /// The data owner's key (clients clone it).
    pub key: SecretKey,
    /// Member queries drawn from the indexed data.
    pub workload: QueryWorkload,
    /// Dataset the index was built from.
    pub dataset: Dataset,
}

/// Builds the index once (outside any timed region).
pub fn prebuild(ds: Dataset, queries: usize, seed: u64) -> PreBuilt {
    let cfg = crate::experiments::dataset_config(&ds);
    let (key, _) = SecretKey::generate(
        &ds.vectors,
        cfg.num_pivots,
        &ds.metric,
        PivotSelection::Random,
        seed,
    );
    let server = Arc::new(CloudServer::new(cfg, MemoryStore::new()).expect("valid config"));
    let mut owner = client_for(
        key.clone(),
        ds.metric.clone(),
        Arc::clone(&server),
        ClientConfig::distances(),
    )
    .with_rng_seed(seed ^ 1);
    let objects: Vec<(ObjectId, _)> = ds
        .vectors
        .iter()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v.clone()))
        .collect();
    for chunk in objects.chunks(BULK) {
        owner.insert_bulk(chunk).expect("insert");
    }
    let workload = QueryWorkload::members(&ds.vectors, queries, seed ^ 3);
    PreBuilt {
        server,
        key,
        workload,
        dataset: ds,
    }
}

/// Runs `rounds` passes over the workload from `threads` concurrent
/// clients, all sharing `pre.server` through the lock-free read path.
/// Returns the aggregate steady-state throughput.
pub fn steady_state_encrypted(
    pre: &PreBuilt,
    cand_size: usize,
    k: usize,
    threads: usize,
    rounds: usize,
    seed: u64,
) -> SteadyState {
    steady_state_encrypted_with(
        pre,
        &ClientConfig::distances(),
        cand_size,
        k,
        threads,
        rounds,
        seed,
    )
}

/// [`steady_state_encrypted`] with an explicit client configuration — the
/// refine bench uses this to pit lazy (decrypt-on-demand) against eager
/// refinement over identical server state.
#[allow(clippy::too_many_arguments)]
pub fn steady_state_encrypted_with(
    pre: &PreBuilt,
    config: &ClientConfig,
    cand_size: usize,
    k: usize,
    threads: usize,
    rounds: usize,
    seed: u64,
) -> SteadyState {
    let start = Instant::now();
    let per_thread: u64 = (rounds * pre.workload.len()) as u64;
    let totals: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let server = Arc::clone(&pre.server);
                let key = pre.key.clone();
                let metric = pre.dataset.metric.clone();
                let workload = &pre.workload;
                let config = config.clone();
                scope.spawn(move || {
                    let mut client =
                        client_for(key, metric, server, config).with_rng_seed(seed ^ t as u64);
                    for _ in 0..rounds {
                        for q in &workload.queries {
                            let (res, _) = client.knn_approx(q, k, cand_size).expect("search");
                            std::hint::black_box(res);
                        }
                    }
                    let costs = client.total_costs();
                    (costs.candidates, costs.decrypted)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("query thread"))
            .collect()
    });
    SteadyState {
        threads,
        queries: per_thread * threads as u64,
        elapsed: start.elapsed(),
        candidates: totals.iter().map(|(c, _)| c).sum(),
        decrypted: totals.iter().map(|(_, d)| d).sum(),
    }
}

/// Single-threaded batch-API variant: the whole workload travels in
/// `ceil(len/batch)` round trips per round instead of one per query.
pub fn steady_state_batch(
    pre: &PreBuilt,
    cand_size: usize,
    k: usize,
    batch: usize,
    rounds: usize,
    seed: u64,
) -> SteadyState {
    let mut client = client_for(
        pre.key.clone(),
        pre.dataset.metric.clone(),
        Arc::clone(&pre.server),
        ClientConfig::distances(),
    )
    .with_rng_seed(seed ^ 0xba7c);
    let start = Instant::now();
    for _ in 0..rounds {
        for chunk in pre.workload.queries.chunks(batch.max(1)) {
            let (res, _) = client
                .knn_approx_batch(chunk, k, cand_size)
                .expect("batch search");
            std::hint::black_box(res);
        }
    }
    let elapsed = start.elapsed();
    let costs = client.total_costs();
    SteadyState {
        threads: 1,
        queries: (rounds * pre.workload.len()) as u64,
        elapsed,
        candidates: costs.candidates,
        decrypted: costs.decrypted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Which;

    #[test]
    fn steady_state_smoke() {
        let pre = prebuild(Which::Yeast.dataset(300, 11), 4, 5);
        let single = steady_state_encrypted(&pre, 50, 10, 1, 1, 7);
        assert_eq!(single.queries, 4);
        assert!(single.queries_per_second() > 0.0);
        let multi = steady_state_encrypted(&pre, 50, 10, 2, 1, 7);
        assert_eq!(multi.queries, 8);
        let batch = steady_state_batch(&pre, 50, 10, 4, 1, 7);
        assert_eq!(batch.queries, 4);
    }
}
