//! Insert-path throughput of single vs sharded servers — the measurement
//! behind `BENCH_shard.json`.
//!
//! The single `CloudServer` takes **one global write lock** per insert; the
//! sharded server takes the write lock of exactly one shard. On a
//! single-vCPU container a CPU-bound insert cannot speed up with threads
//! regardless of locking (physics), so the lock *structure* is made
//! visible with a [`LatencyStore`]: every `append` sleeps a configurable
//! write delay **while the owning index's write lock is held**, modelling
//! an I/O-bound bucket write (the disk-store regime). Under a global lock
//! the sleeps serialize; under per-shard locks they overlap — so the
//! sharded/single ratio measures exactly "inserts to distinct shards do
//! not serialize", independent of core count.

use std::sync::Arc;
use std::time::{Duration, Instant};

use simcloud_core::protocol::{Request, Response};
use simcloud_core::CloudServer;
use simcloud_mindex::{IndexEntry, MIndexConfig, Routing, RoutingStrategy};
use simcloud_shard::ShardedCloudServer;
use simcloud_storage::{BucketId, BucketStore, IoStats, MemoryStore, Record, StorageError};

use crate::steady::RouterKind;

/// A bucket store whose writes cost wall-clock time: delegates everything
/// to a [`MemoryStore`], sleeping `write_delay` inside each `append` —
/// i.e. inside the index write lock of whichever server owns it.
#[derive(Debug)]
pub struct LatencyStore {
    inner: MemoryStore,
    write_delay: Duration,
}

impl LatencyStore {
    /// Wraps a fresh in-memory store with the given per-append delay.
    pub fn new(write_delay: Duration) -> Self {
        Self {
            inner: MemoryStore::new(),
            write_delay,
        }
    }
}

impl BucketStore for LatencyStore {
    fn append(&mut self, bucket: BucketId, record: Record) -> Result<(), StorageError> {
        if !self.write_delay.is_zero() {
            std::thread::sleep(self.write_delay);
        }
        self.inner.append(bucket, record)
    }

    fn read_bucket(&self, bucket: BucketId) -> Result<Vec<Record>, StorageError> {
        self.inner.read_bucket(bucket)
    }

    fn read_matching(
        &self,
        bucket: BucketId,
        wanted: &dyn Fn(u64) -> bool,
    ) -> Result<Vec<Record>, StorageError> {
        self.inner.read_matching(bucket, wanted)
    }

    fn bucket_len(&self, bucket: BucketId) -> usize {
        self.inner.bucket_len(bucket)
    }

    fn delete_bucket(&mut self, bucket: BucketId) -> Result<(), StorageError> {
        self.inner.delete_bucket(bucket)
    }

    fn bucket_ids(&self) -> Vec<BucketId> {
        self.inner.bucket_ids()
    }

    fn total_records(&self) -> u64 {
        self.inner.total_records()
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        self.inner.flush()
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    fn backend_name(&self) -> &'static str {
        "Latency-modelled memory storage"
    }
}

enum AnyServer {
    Single(Arc<CloudServer<LatencyStore>>),
    Sharded(Arc<ShardedCloudServer<LatencyStore>>),
}

impl AnyServer {
    fn process(&self, request: Request) -> Response {
        match self {
            AnyServer::Single(s) => s.process(request),
            AnyServer::Sharded(s) => s.process(request),
        }
    }
}

/// Result of one concurrent-insert run.
#[derive(Debug, Clone, Copy)]
pub struct InsertThroughput {
    /// Entries inserted across all threads.
    pub inserts: u64,
    /// Wall-clock time of the insert phase.
    pub elapsed: Duration,
}

impl InsertThroughput {
    /// Aggregate inserts per second.
    pub fn inserts_per_second(&self) -> f64 {
        self.inserts as f64 / self.elapsed.as_secs_f64()
    }
}

const PIVOTS: usize = 8;

fn insert_config() -> MIndexConfig {
    MIndexConfig {
        num_pivots: PIVOTS,
        max_level: 2,
        bucket_capacity: 64,
        strategy: RoutingStrategy::Distances,
    }
}

fn entries_for_thread(thread: u64, n: usize, seed: u64) -> Vec<IndexEntry> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed ^ (thread << 17));
    (0..n)
        .map(|i| {
            let ds: Vec<f64> = (0..PIVOTS).map(|_| rng.gen_range(0.0..10.0)).collect();
            IndexEntry::new(
                1 + thread * 1_000_000 + i as u64,
                Routing::from_distances(&ds),
                vec![0xab; 64],
            )
        })
        .collect()
}

/// Drives `threads` concurrent connections, each inserting `per_thread`
/// entries **one request at a time** (the streaming-insert pattern — each
/// request takes and releases the write lock once) against a server with
/// `shards` shards (1 = the single `CloudServer`). `write_delay` is the
/// per-append cost inside the lock; `Duration::ZERO` measures the pure
/// CPU-bound path.
pub fn concurrent_insert_throughput(
    threads: usize,
    per_thread: usize,
    shards: usize,
    router: RouterKind,
    write_delay: Duration,
    seed: u64,
) -> InsertThroughput {
    let server = if shards <= 1 {
        AnyServer::Single(Arc::new(
            CloudServer::new(insert_config(), LatencyStore::new(write_delay)).expect("config"),
        ))
    } else {
        AnyServer::Sharded(Arc::new(
            ShardedCloudServer::new(
                insert_config(),
                router.build(),
                (0..shards)
                    .map(|_| LatencyStore::new(write_delay))
                    .collect(),
            )
            .expect("config"),
        ))
    };
    let server = &server;
    // Workloads are generated *before* the clock starts — the run measures
    // concurrent inserts, not serial entry generation on the main thread.
    let workloads: Vec<Vec<IndexEntry>> = (0..threads as u64)
        .map(|t| entries_for_thread(t, per_thread, seed))
        .collect();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for entries in workloads {
            scope.spawn(move || {
                for e in entries {
                    match server.process(Request::Insert(vec![e])) {
                        Response::Inserted(1) => {}
                        other => panic!("insert failed: {other:?}"),
                    }
                }
            });
        }
    });
    InsertThroughput {
        inserts: (threads * per_thread) as u64,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// With a per-append write delay, four threads against four shards must
    /// overlap their (lock-held) writes, while the single server's global
    /// write lock serializes them — the structural claim of the sharding
    /// subsystem, verifiable on any core count because sleeps don't consume
    /// CPU.
    #[test]
    fn sharded_inserts_overlap_latency_bound_writes() {
        let delay = Duration::from_micros(300);
        let single = concurrent_insert_throughput(4, 20, 1, RouterKind::Hash, delay, 3);
        let sharded = concurrent_insert_throughput(4, 20, 4, RouterKind::Hash, delay, 3);
        let speedup = sharded.inserts_per_second() / single.inserts_per_second();
        assert!(
            speedup > 1.5,
            "4 shards should overlap latency-bound inserts (speedup {speedup:.2}x)"
        );
    }

    #[test]
    fn zero_delay_run_completes_and_counts() {
        let r = concurrent_insert_throughput(2, 10, 2, RouterKind::Pivot, Duration::ZERO, 5);
        assert_eq!(r.inserts, 20);
        assert!(r.inserts_per_second() > 0.0);
    }
}
