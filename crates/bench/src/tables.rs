//! Plain-text table rendering in the paper's format.

/// A simple left-labelled table: one row per measure, one column per
/// parameter value — the layout of the paper's Tables 3–9.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<String>)>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Self {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Adds a row (label + one value per column).
    pub fn row(&mut self, label: impl Into<String>, values: Vec<String>) -> &mut Self {
        let label = label.into();
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row '{label}' has {} values for {} columns",
            values.len(),
            self.columns.len()
        );
        self.rows.push((label, values));
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(4))
            .max()
            .unwrap()
            .max(24);
        let mut col_w: Vec<usize> = self.columns.iter().map(std::string::String::len).collect();
        for (_, vals) in &self.rows {
            for (i, v) in vals.iter().enumerate() {
                col_w[i] = col_w[i].max(v.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&format!("{:<label_w$}", ""));
        for (c, w) in self.columns.iter().zip(&col_w) {
            out.push_str(&format!("  {c:>w$}"));
        }
        out.push('\n');
        let total = label_w + col_w.iter().map(|w| w + 2).sum::<usize>();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for (label, vals) in &self.rows {
            out.push_str(&format!("{label:<label_w$}"));
            for (v, w) in vals.iter().zip(&col_w) {
                out.push_str(&format!("  {v:>w$}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Formats seconds with adaptive precision (the paper mixes second and
/// millisecond magnitudes).
pub fn secs(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{s:.1}")
    } else if s >= 1.0 {
        format!("{s:.3}")
    } else {
        format!("{s:.4}")
    }
}

/// Formats milliseconds (Table 9 uses ms).
pub fn millis(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1000.0)
}

/// Formats a kB figure.
pub fn kb(bytes: u64) -> String {
    format!("{:.3}", bytes as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", vec!["150".into(), "1,500".into()]);
        t.row("Client time [s]", vec!["0.002".into(), "0.014".into()]);
        t.row("Recall [%]", vec!["59.80".into(), "91.6".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("Client time [s]"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "2 values for 1 columns")]
    fn row_arity_checked() {
        let mut t = Table::new("X", vec!["a".into()]);
        t.row("r", vec!["1".into(), "2".into()]);
    }

    #[test]
    fn number_formats() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
        assert_eq!(secs(Duration::from_micros(800)), "0.0008");
        assert_eq!(millis(Duration::from_micros(2690)), "2.690");
        assert_eq!(kb(25805), "25.805");
    }
}
