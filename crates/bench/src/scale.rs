//! Experiment scales.
//!
//! The paper's exact sizes (YEAST 2,882 / HUMAN 4,026 / CoPhIR 1,000,000
//! with 100 queries) are available as [`Scale::Paper`]; the default
//! [`Scale::Quick`] trims CoPhIR and the query count so `repro --all`
//! finishes in minutes on a laptop while preserving every trend (candidate
//! sizes scale proportionally).

/// Experiment scale preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Trimmed sizes for fast regeneration (default).
    Quick,
    /// The paper's sizes (CoPhIR capped at 200k so the run stays feasible
    /// without the authors' cluster; pass `--cophir-n 1000000` to override).
    Paper,
}

/// Concrete sizes derived from a scale.
#[derive(Debug, Clone, Copy)]
pub struct Sizes {
    /// YEAST record count.
    pub yeast_n: usize,
    /// HUMAN record count.
    pub human_n: usize,
    /// CoPhIR record count.
    pub cophir_n: usize,
    /// Queries per search experiment.
    pub queries: usize,
    /// k for the k-NN tables (paper: 30).
    pub k: usize,
}

impl Scale {
    /// Resolves the preset (with an optional CoPhIR override).
    pub fn sizes(self, cophir_override: Option<usize>) -> Sizes {
        let mut s = match self {
            Scale::Quick => Sizes {
                yeast_n: 2882,
                human_n: 4026,
                cophir_n: 20_000,
                queries: 30,
                k: 30,
            },
            Scale::Paper => Sizes {
                yeast_n: 2882,
                human_n: 4026,
                cophir_n: 200_000,
                queries: 100,
                k: 30,
            },
        };
        if let Some(n) = cophir_override {
            s.cophir_n = n;
        }
        s
    }

    /// Candidate-set sizes for the YEAST search table (paper Table 5).
    pub fn yeast_cand_sizes(self) -> Vec<usize> {
        vec![150, 300, 600, 1500]
    }

    /// Candidate-set sizes for the CoPhIR search table (paper Table 6 uses
    /// 500…50,000 of 1M = 0.05%…5%; scaled proportionally to `cophir_n`).
    pub fn cophir_cand_sizes(self, cophir_n: usize) -> Vec<usize> {
        [0.0005f64, 0.001, 0.005, 0.01, 0.02, 0.05]
            .iter()
            .map(|f| ((f * cophir_n as f64).round() as usize).max(1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_table1_counts() {
        let s = Scale::Paper.sizes(None);
        assert_eq!(s.yeast_n, 2882);
        assert_eq!(s.human_n, 4026);
        assert_eq!(s.queries, 100);
        assert_eq!(s.k, 30);
    }

    #[test]
    fn cophir_override() {
        let s = Scale::Quick.sizes(Some(77));
        assert_eq!(s.cophir_n, 77);
    }

    #[test]
    fn cand_sizes_scale_with_n() {
        let at_1m = Scale::Paper.cophir_cand_sizes(1_000_000);
        assert_eq!(at_1m, vec![500, 1000, 5000, 10_000, 20_000, 50_000]);
        let at_20k = Scale::Quick.cophir_cand_sizes(20_000);
        assert_eq!(at_20k, vec![10, 20, 100, 200, 400, 1000]);
    }
}
