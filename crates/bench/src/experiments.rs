//! Experiment implementations — one function per paper table group.
//!
//! Every function returns structured rows; the `repro` binary renders them
//! in the paper's table layout. Seeds are fixed so runs are reproducible.

use std::time::{Duration, Instant};

use simcloud_core::{in_process, ClientConfig, CostReport, SecretKey};
use simcloud_datasets::{parallel_knn_ground_truth, Dataset, QueryWorkload};
use simcloud_metric::{Metric, ObjectId, PivotSelection, Vector};
use simcloud_mindex::{MIndexConfig, PlainMIndex, RoutingStrategy, FIRST_CELL_ONLY};
use simcloud_storage::MemoryStore;
use simcloud_transport::{NetworkModel, Stopwatch};

use simcloud_baselines::{
    ehi::EhiConfig, fdh::FdhConfig, mpt::MptConfig, EhiScheme, FdhScheme, MptScheme, SecureScheme,
    TrivialScheme,
};

/// Which of the paper's datasets an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Which {
    /// YEAST (Table 1 row 1).
    Yeast,
    /// HUMAN (Table 1 row 2).
    Human,
    /// CoPhIR (Table 1 row 3).
    Cophir,
}

impl Which {
    /// Generates the dataset at the requested cardinality.
    pub fn dataset(self, n: usize, seed: u64) -> Dataset {
        match self {
            Which::Yeast => simcloud_datasets::yeast_like(seed, Some(n)),
            Which::Human => simcloud_datasets::human_like(seed, Some(n)),
            Which::Cophir => simcloud_datasets::cophir_like(seed, n),
        }
    }

    /// The paper's M-Index parameters (Table 2).
    pub fn mindex_config(self, strategy: RoutingStrategy) -> MIndexConfig {
        let mut cfg = match self {
            Which::Yeast => MIndexConfig::yeast(),
            Which::Human => MIndexConfig::human(),
            Which::Cophir => MIndexConfig::cophir(),
        };
        cfg.strategy = strategy;
        cfg
    }
}

/// A metric wrapper that accumulates wall time spent in `distance` — used
/// to attribute server-side distance-computation time in the plain-index
/// experiments (the paper's Tables 4, 7, 8 break this out).
pub struct TimedMetric<M> {
    inner: M,
    nanos: std::sync::atomic::AtomicU64,
}

impl<M> std::fmt::Debug for TimedMetric<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimedMetric").finish_non_exhaustive()
    }
}

impl<M> TimedMetric<M> {
    /// Wraps a metric.
    pub fn new(inner: M) -> Self {
        Self {
            inner,
            nanos: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Accumulated time in `distance`.
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(std::sync::atomic::Ordering::Relaxed))
    }

    /// Resets the accumulator.
    pub fn reset(&self) {
        self.nanos.store(0, std::sync::atomic::Ordering::Relaxed);
    }
}

impl<M: Metric<Vector>> Metric<Vector> for TimedMetric<M> {
    fn distance(&self, a: &Vector, b: &Vector) -> f64 {
        let t = Instant::now();
        let d = self.inner.distance(a, b);
        self.nanos.fetch_add(
            t.elapsed().as_nanos() as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        d
    }
    fn name(&self) -> String {
        self.inner.name()
    }
}

/// Pairs each vector with its zero-based [`ObjectId`] — the id assignment
/// every experiment and bench uses, defined once so cross-bench runs index
/// identically.
pub(crate) fn id_objects(vectors: &[Vector]) -> Vec<(ObjectId, Vector)> {
    vectors
        .iter()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v.clone()))
        .collect()
}

/// Bulk size of the paper's construction phase (§5.2).
pub const BULK: usize = 1000;

// ---------------------------------------------------------------------
// Tables 3 & 4: index construction
// ---------------------------------------------------------------------

/// Encrypted M-Index construction (Table 3): bulk inserts of 1000 through
/// the encryption client.
pub fn construction_encrypted(ds: &Dataset, seed: u64) -> CostReport {
    let (key, _) = SecretKey::generate(
        &ds.vectors,
        dataset_config(ds).num_pivots,
        &ds.metric,
        PivotSelection::Random,
        seed,
    );
    let mut cloud = in_process(
        key,
        ds.metric.clone(),
        dataset_config(ds),
        MemoryStore::new(),
        ClientConfig::distances(),
    )
    .expect("valid config")
    .with_rng_seed(seed ^ 1);
    let objects = id_objects(&ds.vectors);
    let mut total = CostReport::default();
    for chunk in objects.chunks(BULK) {
        total.merge(&cloud.insert_bulk(chunk).expect("insert"));
    }
    total
}

/// Basic (non-encrypted) M-Index construction (Table 4): the client ships
/// raw vectors; the server computes pivot distances and builds the index.
pub fn construction_plain(ds: &Dataset, seed: u64) -> CostReport {
    let cfg = dataset_config(ds);
    let pivots = simcloud_metric::select_pivots(
        &ds.vectors,
        cfg.num_pivots,
        &ds.metric,
        PivotSelection::Random,
        seed,
    );
    let metric = TimedMetric::new(ds.metric.clone());
    let mut index = PlainMIndex::new(cfg, pivots, metric, MemoryStore::new()).expect("config");
    let model = NetworkModel::loopback();
    let mut costs = CostReport::default();

    // Client side: serialize the raw vectors per bulk.
    let mut client = Stopwatch::new();
    let mut bulks: Vec<Vec<u8>> = Vec::new();
    client.time(|| {
        for chunk in ds.vectors.chunks(BULK) {
            let mut buf = Vec::new();
            for v in chunk {
                v.encode(&mut buf);
            }
            bulks.push(buf);
        }
    });
    costs.client = client.total();
    for b in &bulks {
        costs.bytes_sent += (b.len() + 4) as u64;
        costs.bytes_received += 5 + 4; // ack
        costs.communication += model.transfer_time((b.len() + 4) as u64) + model.transfer_time(9);
    }
    // Server side: distance computations + tree building.
    let t = Instant::now();
    for (i, v) in ds.vectors.iter().enumerate() {
        index.insert(ObjectId(i as u64), v).expect("insert");
    }
    costs.server = t.elapsed();
    // Attribute the distance-computation share (Table 4's sub-row).
    costs.distance = index.metric().inner().elapsed();
    costs.distance_computations = index.distance_computations();
    costs
}

/// The paper's M-Index parameters for a generated dataset (Table 2),
/// matched by name.
pub fn dataset_config(ds: &Dataset) -> MIndexConfig {
    match ds.name.as_str() {
        "YEAST" => MIndexConfig::yeast(),
        "HUMAN" => MIndexConfig::human(),
        "CoPhIR" => MIndexConfig::cophir(),
        _ => MIndexConfig::yeast(),
    }
}

// ---------------------------------------------------------------------
// Tables 5–8: approximate k-NN search
// ---------------------------------------------------------------------

/// One column of a search table.
#[derive(Debug, Clone)]
pub struct SearchRow {
    /// Candidate set size requested.
    pub cand_size: usize,
    /// Per-query average costs.
    pub costs: CostReport,
    /// Mean recall over the query batch (%).
    pub recall: f64,
}

/// The shared measurement body of the encrypted-search tables: outsources
/// the collection through `cloud`, then sweeps `cand_sizes` over the member
/// workload against exact ground truth. One definition, so `repro --shards`
/// rows stay comparable to the single-index tables by construction.
fn encrypted_search_sweep<T: simcloud_transport::Transport>(
    cloud: &mut simcloud_core::EncryptedClient<simcloud_datasets::DatasetMetric, T>,
    ds: &Dataset,
    cand_sizes: &[usize],
    queries: usize,
    k: usize,
    seed: u64,
) -> Vec<SearchRow> {
    let objects = id_objects(&ds.vectors);
    for chunk in objects.chunks(BULK) {
        cloud.insert_bulk(chunk).expect("insert");
    }
    let workload = QueryWorkload::members(&ds.vectors, queries, seed ^ 3);
    let truth = parallel_knn_ground_truth(
        &ds.vectors,
        &workload.queries,
        &ds.metric,
        k,
        std::thread::available_parallelism().map_or(4, std::num::NonZero::get),
    );
    let mut rows = Vec::new();
    for &cand in cand_sizes {
        let mut total = CostReport::default();
        let mut answers = Vec::with_capacity(workload.len());
        for q in &workload.queries {
            let (res, costs) = cloud.knn_approx(q, k, cand).expect("search");
            total.merge(&costs);
            answers.push(res);
        }
        rows.push(SearchRow {
            cand_size: cand,
            costs: total.averaged(workload.len() as u32),
            recall: truth.mean_recall(&answers),
        });
    }
    rows
}

/// Encrypted M-Index approximate k-NN sweep (Tables 5 and 6).
pub fn search_encrypted(
    ds: &Dataset,
    cand_sizes: &[usize],
    queries: usize,
    k: usize,
    seed: u64,
) -> Vec<SearchRow> {
    let cfg = dataset_config(ds);
    let (key, _) = SecretKey::generate(
        &ds.vectors,
        cfg.num_pivots,
        &ds.metric,
        PivotSelection::Random,
        seed,
    );
    let mut cloud = in_process(
        key,
        ds.metric.clone(),
        cfg,
        MemoryStore::new(),
        ClientConfig::distances(),
    )
    .expect("config")
    .with_rng_seed(seed ^ 2);
    encrypted_search_sweep(&mut cloud, ds, cand_sizes, queries, k, seed)
}

/// [`search_encrypted`] against a **sharded** deployment: same key
/// derivation, same workload and ground truth (the sweep body is shared),
/// with the collection spread over `shards` hash-routed shards —
/// `repro --shards N` compares its rows against the single-index tables.
pub fn search_encrypted_sharded(
    ds: &Dataset,
    cand_sizes: &[usize],
    queries: usize,
    k: usize,
    seed: u64,
    shards: usize,
) -> Vec<SearchRow> {
    let cfg = dataset_config(ds);
    let (key, _) = SecretKey::generate(
        &ds.vectors,
        cfg.num_pivots,
        &ds.metric,
        PivotSelection::Random,
        seed,
    );
    let mut cloud = simcloud_shard::sharded_in_process(
        key,
        ds.metric.clone(),
        cfg,
        Box::new(simcloud_shard::HashRouter),
        simcloud_shard::memory_stores(shards),
        ClientConfig::distances(),
    )
    .expect("config")
    .with_rng_seed(seed ^ 2);
    encrypted_search_sweep(&mut cloud, ds, cand_sizes, queries, k, seed)
}

/// Basic (non-encrypted) M-Index approximate k-NN sweep (Tables 7 and 8):
/// the search runs fully server-side and only the k result objects travel
/// back.
pub fn search_plain(
    ds: &Dataset,
    cand_sizes: &[usize],
    queries: usize,
    k: usize,
    seed: u64,
) -> Vec<SearchRow> {
    let cfg = dataset_config(ds);
    let pivots = simcloud_metric::select_pivots(
        &ds.vectors,
        cfg.num_pivots,
        &ds.metric,
        PivotSelection::Random,
        seed,
    );
    let metric = TimedMetric::new(ds.metric.clone());
    let mut index = PlainMIndex::new(cfg, pivots, metric, MemoryStore::new()).expect("config");
    for (i, v) in ds.vectors.iter().enumerate() {
        index.insert(ObjectId(i as u64), v).expect("insert");
    }
    let workload = QueryWorkload::members(&ds.vectors, queries, seed ^ 3);
    let truth = parallel_knn_ground_truth(
        &ds.vectors,
        &workload.queries,
        &ds.metric,
        k,
        std::thread::available_parallelism().map_or(4, std::num::NonZero::get),
    );
    let model = NetworkModel::loopback();
    let per_obj_bytes = ds.vectors[0].encoded_len() as u64 + 8; // object + id
    let mut rows = Vec::new();
    for &cand in cand_sizes {
        let mut total = CostReport::default();
        let mut answers = Vec::with_capacity(workload.len());
        for q in &workload.queries {
            let mut costs = CostReport::default();
            index.metric().inner().reset();
            let dc_before = index.distance_computations();
            let t = Instant::now();
            let (res, _) = index.knn_approx(q, k, cand).expect("search");
            costs.server = t.elapsed();
            // Distance time (pivot distances + refinement) is server-side
            // here — Tables 7/8 report it as a server sub-row.
            costs.distance = index.metric().inner().elapsed();
            costs.distance_computations = index.distance_computations() - dc_before;
            // Request: query object + parameters; response: k result objects.
            costs.bytes_sent = q.encoded_len() as u64 + 4 + 12;
            costs.bytes_received = res.len() as u64 * per_obj_bytes + 4;
            costs.communication =
                model.transfer_time(costs.bytes_sent) + model.transfer_time(costs.bytes_received);
            total.merge(&costs);
            answers.push(res);
        }
        rows.push(SearchRow {
            cand_size: cand,
            costs: total.averaged(workload.len() as u32),
            recall: truth.mean_recall(&answers),
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Table 9: 1-NN comparison with EHI / MPT / FDH / trivial
// ---------------------------------------------------------------------

/// One scheme's Table 9 column.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Scheme name.
    pub name: &'static str,
    /// Per-query average costs.
    pub costs: CostReport,
    /// Construction cost (total).
    pub build: CostReport,
    /// 1-NN recall (% of queries whose true NN was returned).
    pub recall: f64,
    /// Whether the scheme's k-NN is exact by construction.
    pub exact: bool,
}

/// Approximate 1-NN comparison on held-out queries (paper §5.4): the
/// Encrypted M-Index restricted to a single Voronoi cell versus the
/// baselines.
pub fn comparison_1nn(ds: &Dataset, queries: usize, seed: u64) -> Vec<ComparisonRow> {
    let workload = QueryWorkload::held_out(&ds.vectors, queries, seed ^ 40);
    let indexed = id_objects(&workload.indexed);
    let truth = parallel_knn_ground_truth(
        &workload.indexed,
        &workload.queries,
        &ds.metric,
        1,
        std::thread::available_parallelism().map_or(4, std::num::NonZero::get),
    );
    let mut rows = Vec::new();

    // --- Encrypted M-Index, single-cell candidate sets -----------------
    {
        let cfg = dataset_config(ds);
        let (key, _) = SecretKey::generate(
            &workload.indexed,
            cfg.num_pivots,
            &ds.metric,
            PivotSelection::Random,
            seed,
        );
        let mut cloud = in_process(
            key,
            ds.metric.clone(),
            cfg,
            MemoryStore::new(),
            ClientConfig::distances(),
        )
        .expect("config")
        .with_rng_seed(seed ^ 41);
        let mut build = CostReport::default();
        for chunk in indexed.chunks(BULK) {
            build.merge(&cloud.insert_bulk(chunk).expect("insert"));
        }
        let mut total = CostReport::default();
        let mut hits = 0usize;
        for (qi, q) in workload.queries.iter().enumerate() {
            let (res, costs) = cloud.knn_approx(q, 1, FIRST_CELL_ONLY).expect("search");
            total.merge(&costs);
            if truth.recall(qi, &res) >= 100.0 {
                hits += 1;
            }
        }
        rows.push(ComparisonRow {
            name: "Encrypted M-Index",
            costs: total.averaged(workload.len() as u32),
            build,
            recall: 100.0 * hits as f64 / workload.len() as f64,
            exact: false,
        });
    }

    // --- Baselines -------------------------------------------------------
    let schemes: Vec<Box<dyn SecureScheme>> = {
        let mk_key = |s: u64| {
            SecretKey::generate(&workload.indexed, 2, &ds.metric, PivotSelection::Random, s).0
        };
        vec![
            Box::new(EhiScheme::new(
                mk_key(seed ^ 50),
                ds.metric.clone(),
                EhiConfig::default(),
                seed ^ 51,
            )),
            Box::new(MptScheme::new(
                mk_key(seed ^ 52),
                ds.metric.clone(),
                MptConfig::default(),
                seed ^ 53,
            )),
            Box::new(FdhScheme::new(
                mk_key(seed ^ 54),
                ds.metric.clone(),
                FdhConfig {
                    bits: 16,
                    // Match the Encrypted M-Index's average single-cell
                    // candidate volume for a fair recall comparison.
                    min_candidates: 42,
                },
                seed ^ 55,
            )),
            Box::new(TrivialScheme::new(
                mk_key(seed ^ 56),
                ds.metric.clone(),
                seed ^ 57,
            )),
        ]
    };
    for mut scheme in schemes {
        let build = scheme.build(&indexed).expect("build");
        let mut total = CostReport::default();
        let mut hits = 0usize;
        for (qi, q) in workload.queries.iter().enumerate() {
            let (res, costs) = scheme.knn(q, 1).expect("search");
            total.merge(&costs);
            if truth.recall(qi, &res) >= 100.0 {
                hits += 1;
            }
        }
        rows.push(ComparisonRow {
            name: scheme.name(),
            costs: total.averaged(workload.len() as u32),
            build,
            recall: 100.0 * hits as f64 / workload.len() as f64,
            exact: scheme.is_exact(),
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// Pivot-count sweep on YEAST: recall & costs at fixed CandSize.
pub fn ablation_pivots(
    ds: &Dataset,
    pivot_counts: &[usize],
    cand_size: usize,
    queries: usize,
    k: usize,
    seed: u64,
) -> Vec<(usize, SearchRow)> {
    let workload = QueryWorkload::members(&ds.vectors, queries, seed ^ 60);
    let truth = parallel_knn_ground_truth(
        &ds.vectors,
        &workload.queries,
        &ds.metric,
        k,
        std::thread::available_parallelism().map_or(4, std::num::NonZero::get),
    );
    let mut out = Vec::new();
    for &np in pivot_counts {
        let mut cfg = dataset_config(ds);
        cfg.num_pivots = np;
        cfg.max_level = cfg.max_level.min(np);
        let (key, _) =
            SecretKey::generate(&ds.vectors, np, &ds.metric, PivotSelection::Random, seed);
        let mut cloud = in_process(
            key,
            ds.metric.clone(),
            cfg,
            MemoryStore::new(),
            ClientConfig::distances(),
        )
        .expect("config")
        .with_rng_seed(seed ^ 61);
        for chunk in id_objects(&ds.vectors).chunks(BULK) {
            cloud.insert_bulk(chunk).expect("insert");
        }
        let mut total = CostReport::default();
        let mut answers = Vec::new();
        for q in &workload.queries {
            let (res, costs) = cloud.knn_approx(q, k, cand_size).expect("search");
            total.merge(&costs);
            answers.push(res);
        }
        out.push((
            np,
            SearchRow {
                cand_size,
                costs: total.averaged(workload.len() as u32),
                recall: truth.mean_recall(&answers),
            },
        ));
    }
    out
}

/// Distances-vs-permutation routing comparison (privacy/efficiency trade of
/// §4.2): identical queries under the two strategies.
pub fn ablation_strategy(
    ds: &Dataset,
    cand_size: usize,
    queries: usize,
    k: usize,
    seed: u64,
) -> Vec<(&'static str, SearchRow)> {
    let workload = QueryWorkload::members(&ds.vectors, queries, seed ^ 70);
    let truth = parallel_knn_ground_truth(
        &ds.vectors,
        &workload.queries,
        &ds.metric,
        k,
        std::thread::available_parallelism().map_or(4, std::num::NonZero::get),
    );
    let mut out = Vec::new();
    for (label, strategy, client_cfg) in [
        (
            "distances",
            RoutingStrategy::Distances,
            ClientConfig::distances(),
        ),
        (
            "permutation",
            RoutingStrategy::Permutation,
            ClientConfig::permutations(),
        ),
    ] {
        let mut cfg = dataset_config(ds);
        cfg.strategy = strategy;
        let (key, _) = SecretKey::generate(
            &ds.vectors,
            cfg.num_pivots,
            &ds.metric,
            PivotSelection::Random,
            seed,
        );
        let mut cloud = in_process(key, ds.metric.clone(), cfg, MemoryStore::new(), client_cfg)
            .expect("config")
            .with_rng_seed(seed ^ 71);
        for chunk in id_objects(&ds.vectors).chunks(BULK) {
            cloud.insert_bulk(chunk).expect("insert");
        }
        let mut total = CostReport::default();
        let mut answers = Vec::new();
        for q in &workload.queries {
            let (res, costs) = cloud.knn_approx(q, k, cand_size).expect("search");
            total.merge(&costs);
            answers.push(res);
        }
        out.push((
            label,
            SearchRow {
                cand_size,
                costs: total.averaged(workload.len() as u32),
                recall: truth.mean_recall(&answers),
            },
        ));
    }
    out
}

/// Level-4 distance-transformation ablation: candidate inflation on range
/// queries at equal exactness.
pub fn ablation_transform(
    ds: &Dataset,
    radii_quantiles: &[f64],
    queries: usize,
    seed: u64,
) -> Vec<(f64, u64, u64)> {
    use simcloud_core::DistanceTransform;
    use simcloud_metric::analysis::DistanceHistogram;
    let cfg = dataset_config(ds);
    let (key, _) = SecretKey::generate(
        &ds.vectors,
        cfg.num_pivots,
        &ds.metric,
        PivotSelection::Random,
        seed,
    );
    let hist = DistanceHistogram::sample(&ds.vectors, &ds.metric, 2000, 64, seed ^ 80);
    let d_max = hist.stats().max * 1.5;
    let transform = DistanceTransform::from_seed(seed ^ 81, d_max, 8);

    let mut base = in_process(
        key.clone(),
        ds.metric.clone(),
        cfg,
        MemoryStore::new(),
        ClientConfig::distances(),
    )
    .expect("config")
    .with_rng_seed(seed ^ 82);
    let mut transformed = in_process(
        key,
        ds.metric.clone(),
        cfg,
        MemoryStore::new(),
        ClientConfig::distances().with_transform(transform),
    )
    .expect("config")
    .with_rng_seed(seed ^ 83);
    let objects = id_objects(&ds.vectors);
    for chunk in objects.chunks(BULK) {
        base.insert_bulk(chunk).expect("insert");
        transformed.insert_bulk(chunk).expect("insert");
    }
    let workload = QueryWorkload::members(&ds.vectors, queries, seed ^ 84);
    let mut out = Vec::new();
    for &quant in radii_quantiles {
        let radius = hist.quantile(quant);
        let mut base_cands = 0u64;
        let mut tr_cands = 0u64;
        for q in &workload.queries {
            let (b_res, b_costs) = base.range(q, radius).expect("range");
            let (t_res, t_costs) = transformed.range(q, radius).expect("range");
            assert_eq!(
                b_res.iter().map(|x| x.0).collect::<Vec<_>>(),
                t_res.iter().map(|x| x.0).collect::<Vec<_>>(),
                "transform must not change results"
            );
            base_cands += b_costs.candidates;
            tr_cands += t_costs.candidates;
        }
        out.push((
            radius,
            base_cands / queries as u64,
            tr_cands / queries as u64,
        ));
    }
    out
}

/// k sweep (the paper: "We varied the parameter k but the results were
/// similar and we present only results for k = 30").
pub fn ablation_k(
    ds: &Dataset,
    ks: &[usize],
    cand_size: usize,
    queries: usize,
    seed: u64,
) -> Vec<(usize, f64)> {
    let cfg = dataset_config(ds);
    let (key, _) = SecretKey::generate(
        &ds.vectors,
        cfg.num_pivots,
        &ds.metric,
        PivotSelection::Random,
        seed,
    );
    let mut cloud = in_process(
        key,
        ds.metric.clone(),
        cfg,
        MemoryStore::new(),
        ClientConfig::distances(),
    )
    .expect("config")
    .with_rng_seed(seed ^ 90);
    for chunk in id_objects(&ds.vectors).chunks(BULK) {
        cloud.insert_bulk(chunk).expect("insert");
    }
    let workload = QueryWorkload::members(&ds.vectors, queries, seed ^ 91);
    let mut out = Vec::new();
    for &k in ks {
        let truth = parallel_knn_ground_truth(
            &ds.vectors,
            &workload.queries,
            &ds.metric,
            k,
            std::thread::available_parallelism().map_or(4, std::num::NonZero::get),
        );
        let mut answers = Vec::new();
        for q in &workload.queries {
            let (res, _) = cloud.knn_approx(q, k, cand_size).expect("search");
            answers.push(res);
        }
        out.push((k, truth.mean_recall(&answers)));
    }
    out
}

/// Network-model ablation: overall time of encrypted vs plain search when
/// the similarity cloud moves from loopback to LAN to WAN.
pub fn ablation_network(
    ds: &Dataset,
    cand_size: usize,
    queries: usize,
    k: usize,
    seed: u64,
) -> Vec<(&'static str, Duration, Duration)> {
    use simcloud_core::in_process_with_model;
    let cfg = dataset_config(ds);
    let (key, _) = SecretKey::generate(
        &ds.vectors,
        cfg.num_pivots,
        &ds.metric,
        PivotSelection::Random,
        seed,
    );
    let workload = QueryWorkload::members(&ds.vectors, queries, seed ^ 95);
    let mut out = Vec::new();
    for (label, model) in [
        ("loopback", NetworkModel::loopback()),
        ("lan", NetworkModel::lan()),
        ("wan", NetworkModel::wan()),
    ] {
        let mut cloud = in_process_with_model(
            key.clone(),
            ds.metric.clone(),
            cfg,
            MemoryStore::new(),
            ClientConfig::distances(),
            model,
        )
        .expect("config")
        .with_rng_seed(seed ^ 96);
        for chunk in id_objects(&ds.vectors).chunks(BULK) {
            cloud.insert_bulk(chunk).expect("insert");
        }
        let mut enc_total = CostReport::default();
        for q in &workload.queries {
            let (_, costs) = cloud.knn_approx(q, k, cand_size).expect("search");
            enc_total.merge(&costs);
        }
        let enc = enc_total.averaged(queries as u32).overall();
        // Plain comparison: k objects over the same model.
        let per_obj = ds.vectors[0].encoded_len() as u64 + 8;
        let plain_comm = model.transfer_time(ds.vectors[0].encoded_len() as u64 + 16)
            + model.transfer_time(k as u64 * per_obj + 4);
        let plain = enc_total.averaged(queries as u32).server + plain_comm;
        out.push((label, enc, plain));
    }
    out
}
