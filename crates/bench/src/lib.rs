//! # simcloud-bench — experiment harness
//!
//! Shared machinery for regenerating the paper's evaluation (Tables 1–9)
//! and the ablations listed in DESIGN.md. The `repro` binary is the
//! entry point:
//!
//! ```text
//! cargo run --release -p simcloud-bench --bin repro -- --all
//! cargo run --release -p simcloud-bench --bin repro -- --table 5
//! cargo run --release -p simcloud-bench --bin repro -- --ablation pivots
//! cargo run --release -p simcloud-bench --bin repro -- --scale paper --table 6
//! ```
//!
//! Criterion micro/meso benches live in `benches/` (one per cost center:
//! crypto, construction, search, baselines, components).

pub mod experiments;
pub mod scale;
pub mod shardperf;
pub mod steady;
pub mod tables;

pub use experiments::*;
pub use scale::Scale;
pub use shardperf::{concurrent_insert_throughput, InsertThroughput, LatencyStore};
pub use steady::{
    prebuild, prebuild_sharded, prebuild_with, shards_arg, shards_suffix, steady_state_batch,
    steady_state_encrypted, steady_state_encrypted_tcp, steady_state_encrypted_with, PreBuilt,
    RouterKind, SteadyServer, SteadyState,
};
pub use tables::Table;
