//! Sharded vs single-index deployment — the bench behind `BENCH_shard.json`.
//!
//! Three measurements over identical YEAST-like data:
//!
//! 1. **Identity** — for hash and pivot routers at 2 and 4 shards, with and
//!    without an inline byte budget, sharded kNN (collection-covering
//!    candidate budget) and range answers must be byte-identical to the
//!    single index's through the unmodified client. Asserted, not just
//!    reported.
//! 2. **Query throughput** — steady-state encrypted 30-NN against 1/2/4
//!    shards (hash and pivot routers) vs the single index. With the
//!    incremental candidate frontier each shard stages headers but only
//!    decodes what the coordinator's bound-ordered pull actually consumes
//!    (~`cand_size / N` per shard), so even on a single-vCPU container the
//!    4-shard deployment must stay within noise of single-index: at CI
//!    (`--quick`) scale the bench asserts hash-routed 4-shard throughput
//!    ≥ 0.95× single, and at both scales that the summed
//!    `candidates_generated` work counter shows sub-linear amplification
//!    (< 1.5× the single index's decode work).
//! 3. **Insert throughput** — 4 concurrent connections streaming inserts
//!    against 1/2/4 shards over a latency-modelled store (fixed write delay
//!    inside the index write lock). Per-shard locks must overlap the
//!    delays: the bench asserts 4-shard ≥ 1.5× single. The zero-delay
//!    (CPU-bound) numbers are reported unasserted.
//!
//! ```text
//! cargo bench -p simcloud-bench --bench shard            # full scale
//! cargo bench -p simcloud-bench --bench shard -- --quick # CI scale
//! ```

use std::time::Duration;

use simcloud_bench::{
    concurrent_insert_throughput, prebuild, prebuild_sharded, steady_state_encrypted, PreBuilt,
    RouterKind, Which,
};
use simcloud_core::{client_for, ClientConfig, Neighbor, ServerConfig};
use simcloud_shard::client_for_sharded;

struct Config {
    n: usize,
    queries: usize,
    rounds: usize,
    cand: usize,
    inserts_per_thread: usize,
}

/// Cumulative `candidates_generated` (the decode-work counter summed
/// across shards) on either deployment kind.
fn generated(server: &simcloud_bench::SteadyServer) -> u64 {
    match server {
        simcloud_bench::SteadyServer::Single(s) => s.total_search_stats().candidates_generated,
        simcloud_bench::SteadyServer::Sharded(s) => s.total_search_stats().candidates_generated,
    }
}

fn assert_identical(label: &str, sharded: &[Neighbor], single: &[Neighbor]) {
    assert_eq!(
        sharded.len(),
        single.len(),
        "{label}: answer lengths differ"
    );
    for (i, ((si, sd), (ri, rd))) in sharded.iter().zip(single).enumerate() {
        assert_eq!(si, ri, "{label}: id mismatch at rank {i}");
        assert_eq!(
            sd.to_bits(),
            rd.to_bits(),
            "{label}: distance bits differ at rank {i}"
        );
    }
}

/// Drives identical kNN + range workloads against a single and a sharded
/// deployment (same data, same key, same queries) and asserts byte-equal
/// answers.
fn identity_check(single: &PreBuilt, sharded: &PreBuilt, k: usize, label: &str) {
    let mut sc = match &single.server {
        simcloud_bench::SteadyServer::Single(s) => client_for(
            single.key.clone(),
            single.dataset.metric.clone(),
            std::sync::Arc::clone(s),
            ClientConfig::distances(),
        )
        .with_rng_seed(17),
        _ => unreachable!("reference deployment is single-index"),
    };
    let mut hc = match &sharded.server {
        simcloud_bench::SteadyServer::Sharded(s) => client_for_sharded(
            sharded.key.clone(),
            sharded.dataset.metric.clone(),
            std::sync::Arc::clone(s),
            ClientConfig::distances(),
        )
        .with_rng_seed(19),
        _ => unreachable!("sharded deployment expected"),
    };
    let n = single.dataset.len();
    for (qi, q) in single.workload.queries.iter().enumerate() {
        // Collection-covering candidate budget: the regime where sharded
        // and single candidate sets provably coincide.
        let (a, _) = sc.knn_approx(q, k, n).expect("single knn");
        let (b, _) = hc.knn_approx(q, k, n).expect("sharded knn");
        assert_identical(&format!("{label}/knn q{qi}"), &b, &a);
        // Range exactness is structural at any radius; use the k-th
        // distance so the ball is non-trivial and has boundary ties.
        let radius = a.last().map_or(0.0, |(_, d)| *d);
        let (ra, _) = sc.range(q, radius).expect("single range");
        let (rb, _) = hc.range(q, radius).expect("sharded range");
        assert_identical(&format!("{label}/range q{qi}"), &rb, &ra);
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let k = 30;
    let cfg = if quick {
        Config {
            n: 400,
            queries: 6,
            rounds: 2,
            cand: 150,
            inserts_per_thread: 30,
        }
    } else {
        Config {
            n: 1500,
            queries: 20,
            rounds: 4,
            cand: 600,
            inserts_per_thread: 120,
        }
    };
    println!(
        "sharded vs single-index, encrypted {k}-NN, YEAST n={}, {} queries x {} rounds",
        cfg.n, cfg.queries, cfg.rounds
    );
    let ds = Which::Yeast.dataset(cfg.n, 11);
    let mut json = String::from("{\n");

    // ---- 1. identity ----------------------------------------------------
    let single = prebuild(ds.clone(), cfg.queries, 3);
    let mut identity_combos = 0;
    for shards in [2usize, 4] {
        for router in [RouterKind::Hash, RouterKind::Pivot] {
            for budget in [
                None,
                Some(ServerConfig::budgeted(1 + 4 + 16 * cfg.n + 4 + 40 * 160)),
            ] {
                let server_config = budget.unwrap_or_default();
                let sharded =
                    prebuild_sharded(ds.clone(), cfg.queries, 3, server_config, shards, router);
                let label = format!(
                    "{}x{}{}",
                    shards,
                    router.label(),
                    if budget.is_some() { "+budget" } else { "" }
                );
                identity_check(&single, &sharded, k, &label);
                identity_combos += 1;
            }
        }
    }
    println!(
        "  identity: {} router/shard/budget combos byte-identical over {} queries each",
        identity_combos, cfg.queries
    );
    json.push_str(&format!(
        "  \"identity\": {{ \"combos\": {identity_combos}, \"queries_each\": {}, \"byte_identical\": true }},\n",
        cfg.queries
    ));

    // ---- 2. query throughput -------------------------------------------
    let gen_before = generated(&single.server);
    let single_q = steady_state_encrypted(&single, cfg.cand, k, 1, cfg.rounds, 7);
    let single_qps = single_q.queries_per_second();
    let single_generated = generated(&single.server) - gen_before;
    println!(
        "  query  shards=1          {single_qps:>8.1} queries/s (reference, {single_generated} generated)"
    );
    json.push_str(&format!(
        "  \"query_yeast_30nn/cand{}/shards1\": {{ \"queries_per_s\": {single_qps:.1}, \"vs_single\": 1.00, \"generated\": {single_generated} }},\n",
        cfg.cand
    ));
    for router in [RouterKind::Hash, RouterKind::Pivot] {
        for shards in [2usize, 4] {
            let pre = prebuild_sharded(
                ds.clone(),
                cfg.queries,
                3,
                ServerConfig::default(),
                shards,
                router,
            );
            let run = steady_state_encrypted(&pre, cfg.cand, k, 1, cfg.rounds, 7);
            let qps = run.queries_per_second();
            let ratio = qps / single_qps;
            let gen = generated(&pre.server);
            let amp = gen as f64 / single_generated.max(1) as f64;
            println!(
                "  query  shards={shards} ({:<5})  {qps:>8.1} queries/s ({ratio:.2}x vs single, {amp:.2}x generated)",
                router.label()
            );
            json.push_str(&format!(
                "  \"query_yeast_30nn/cand{}/shards{shards}/{}\": {{ \"queries_per_s\": {qps:.1}, \"vs_single\": {ratio:.2}, \"generated\": {gen}, \"generated_vs_single\": {amp:.2} }},\n",
                cfg.cand,
                router.label()
            ));
            if shards == 4 && router == RouterKind::Hash {
                // The frontier contract, asserted at CI (--quick) scale:
                // pulling in bound order keeps per-shard decode work near
                // cand_size / N, so the scatter-gather deployment must
                // match single-index throughput even on one vCPU. The
                // full-scale row is reported unasserted — opening four
                // best-first walks serially carries a fixed per-shard cost
                // that the larger config doesn't amortize, and the
                // reference and sharded windows are minutes apart on a
                // shared machine...
                assert!(
                    !quick || ratio >= 0.95,
                    "4-shard query throughput {ratio:.2}x vs single-index fell below the \
                     0.95x frontier floor (per-shard work no longer bounded by the pull)"
                );
                // ...and the summed work counter must show the sub-linear
                // amplification directly (4 shards would be ~4x under the
                // old gather-everything merge).
                assert!(
                    amp < 1.5,
                    "4-shard candidates_generated amplification {amp:.2}x >= 1.5x \
                     (shards are decoding past the coordinator's pull again)"
                );
            }
        }
    }

    // ---- 3. insert throughput ------------------------------------------
    let delay = Duration::from_micros(if quick { 200 } else { 300 });
    let threads = 4;
    let mut latency_single = 0.0;
    for shards in [1usize, 2, 4] {
        let run = concurrent_insert_throughput(
            threads,
            cfg.inserts_per_thread,
            shards,
            RouterKind::Hash,
            delay,
            3,
        );
        let ips = run.inserts_per_second();
        if shards == 1 {
            latency_single = ips;
        }
        let ratio = ips / latency_single;
        println!(
            "  insert shards={shards} (write delay {delay:?})  {ips:>8.0} inserts/s ({ratio:.2}x vs single)"
        );
        json.push_str(&format!(
            "  \"insert_latency_bound/threads{threads}/shards{shards}\": {{ \"inserts_per_s\": {ips:.0}, \"vs_single\": {ratio:.2} }},\n"
        ));
        if shards == 4 {
            assert!(
                ratio > 1.5,
                "4 shards must overlap latency-bound inserts (got {ratio:.2}x) — \
                 inserts to distinct shards are serializing"
            );
        }
    }
    let mut cpu_single = 0.0;
    for shards in [1usize, 4] {
        let run = concurrent_insert_throughput(
            threads,
            cfg.inserts_per_thread,
            shards,
            RouterKind::Hash,
            Duration::ZERO,
            5,
        );
        let ips = run.inserts_per_second();
        if shards == 1 {
            cpu_single = ips;
        }
        let ratio = ips / cpu_single;
        println!("  insert shards={shards} (cpu-bound)     {ips:>8.0} inserts/s ({ratio:.2}x vs single, unasserted)");
        json.push_str(&format!(
            "  \"insert_cpu_bound/threads{threads}/shards{shards}\": {{ \"inserts_per_s\": {ips:.0}, \"vs_single\": {ratio:.2} }},\n"
        ));
    }

    json.push_str("  \"scale\": \"");
    json.push_str(if quick { "quick" } else { "full" });
    json.push_str("\"\n}");
    println!("\nJSON summary:\n{json}");
}
