//! Telemetry overhead — the bench behind `BENCH_obs.json`.
//!
//! The whole point of the unified telemetry layer is that leaving it on in
//! production is free-ish: counters are relaxed atomics, histograms are
//! one `fetch_add` per record, and spans read the clock twice. This bench
//! pins that claim: steady-state encrypted 30-NN throughput is measured
//! with span timing **off** and **on** against the same pre-built server
//! (single index and 4-shard scatter-gather), interleaved best-of-N so a
//! noisy neighbour can't masquerade as telemetry cost, and the on/off
//! ratio must stay ≥ 0.95 (≤ 5 % overhead).
//!
//! ```text
//! cargo bench -p simcloud-bench --bench obs            # full scale
//! cargo bench -p simcloud-bench --bench obs -- --quick # CI scale
//! ```

use simcloud_bench::{
    prebuild, prebuild_sharded, steady_state_encrypted, PreBuilt, RouterKind, SteadyServer, Which,
};
use simcloud_core::ServerConfig;

struct Config {
    n: usize,
    queries: usize,
    rounds: usize,
    cand: usize,
}

fn set_enabled(server: &SteadyServer, on: bool) {
    match server {
        SteadyServer::Single(s) => s.telemetry().set_enabled(on),
        SteadyServer::Sharded(s) => s.telemetry().set_enabled(on),
    }
}

fn metrics_text(server: &SteadyServer) -> String {
    match server {
        SteadyServer::Single(s) => s.telemetry().metrics_text(),
        SteadyServer::Sharded(s) => s.telemetry().metrics_text(),
    }
}

fn slow_entries(server: &SteadyServer) -> usize {
    match server {
        SteadyServer::Single(s) => s.telemetry().slow_queries().len(),
        SteadyServer::Sharded(s) => s.telemetry().slow_queries().len(),
    }
}

/// Best-of-`pairs` interleaved throughput, in queries/second.
///
/// Telemetry cost is a few percent at most, which is far below this
/// container's run-to-run wall-clock noise, so the methodology matters:
/// each timed window covers hundreds of queries, the two modes alternate
/// order between pairs (so slow drift hits both sides equally), and each
/// mode keeps its *best* window — external stalls only ever subtract
/// throughput, so the fastest window is the tightest bound on what the
/// code itself can do.
fn measure(pre: &PreBuilt, cfg: &Config, pairs: usize) -> (f64, f64) {
    let k = 30;
    // One untimed pass warms caches and the bucket store before timing.
    set_enabled(&pre.server, true);
    std::hint::black_box(steady_state_encrypted(pre, cfg.cand, k, 1, 1, 5));
    let (mut best_off, mut best_on) = (0.0f64, 0.0f64);
    // A CPU-steal burst during the wrong window can fake an "overhead"
    // no code change explains, so when the ratio lands under the budget
    // we buy more pairs before concluding: best-of is monotone, so extra
    // samples only wash out noise — a genuine >5% overhead caps the
    // enabled side's best window and still fails.
    let mut round = 0;
    while round < pairs || (best_on < 0.95 * best_off && round < pairs + 6) {
        let seed = 7 ^ round as u64;
        for step in 0..2 {
            let on = (round + step) % 2 == 0;
            set_enabled(&pre.server, on);
            let qps =
                steady_state_encrypted(pre, cfg.cand, k, 1, cfg.rounds, seed).queries_per_second();
            if on {
                best_on = best_on.max(qps);
            } else {
                best_off = best_off.max(qps);
            }
        }
        round += 1;
    }
    (best_off, best_on)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Rounds are sized so each timed window covers hundreds of queries —
    // an on/off delta of a few percent is invisible in a handful of
    // milliseconds of wall clock on a shared 1-vCPU container.
    let cfg = if quick {
        Config {
            n: 400,
            queries: 6,
            rounds: 80,
            cand: 150,
        }
    } else {
        Config {
            n: 1500,
            queries: 20,
            rounds: 10,
            cand: 600,
        }
    };
    let pairs = 5;
    println!(
        "telemetry on/off, encrypted 30-NN, YEAST n={}, {} queries x {} rounds, best of {pairs} interleaved pairs",
        cfg.n, cfg.queries, cfg.rounds
    );
    let ds = Which::Yeast.dataset(cfg.n, 11);
    let mut json = String::from("{\n");

    for shards in [1usize, 4] {
        let pre = if shards == 1 {
            prebuild(ds.clone(), cfg.queries, 3)
        } else {
            prebuild_sharded(
                ds.clone(),
                cfg.queries,
                3,
                ServerConfig::default(),
                shards,
                RouterKind::Hash,
            )
        };
        let (off_qps, on_qps) = measure(&pre, &cfg, pairs);
        let ratio = on_qps / off_qps;
        let text = metrics_text(&pre.server);
        let slow = slow_entries(&pre.server);
        println!(
            "  shards={shards}  off {off_qps:>8.1} q/s  on {on_qps:>8.1} q/s  ({ratio:.3}x, \
             exposition {} B, {slow} slow-log entries)",
            text.len()
        );
        json.push_str(&format!(
            "  \"telemetry_yeast_30nn/cand{}/shards{shards}\": {{ \"off_queries_per_s\": {off_qps:.1}, \"on_queries_per_s\": {on_qps:.1}, \"on_vs_off\": {ratio:.3}, \"exposition_bytes\": {}, \"slow_log_entries\": {slow} }},\n",
            cfg.cand,
            text.len()
        ));
        // The exposition must actually carry the request-path histograms
        // when enabled — a silently disabled registry would "win" this
        // bench with a hollow snapshot.
        assert!(
            text.contains("histogram server.request count="),
            "enabled run produced no request histogram:\n{text}"
        );
        if shards == 4 {
            assert!(
                text.contains("histogram shard.open count="),
                "sharded run produced no shard histograms:\n{text}"
            );
        }
        assert!(slow > 0, "enabled run retained no slow queries");
        assert!(
            ratio >= 0.95,
            "telemetry overhead exceeds 5%: on/off = {ratio:.3} at shards={shards}"
        );
    }

    json.push_str("  \"scale\": \"");
    json.push_str(if quick { "quick" } else { "full" });
    json.push_str("\"\n}");
    println!("\nJSON summary:\n{json}");
}
