//! Search benchmarks — paper Tables 5–8 (encrypted vs plain approximate
//! k-NN across candidate-set sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simcloud_bench::{search_encrypted, search_plain, Which};

fn bench_search(c: &mut Criterion) {
    let yeast = Which::Yeast.dataset(1500, 11);
    let mut g = c.benchmark_group("search_yeast_30nn");
    g.sample_size(10);
    for cand in [150usize, 600] {
        g.bench_with_input(BenchmarkId::new("encrypted", cand), &cand, |b, &cand| {
            b.iter(|| std::hint::black_box(search_encrypted(&yeast, &[cand], 5, 30, 3)))
        });
        g.bench_with_input(BenchmarkId::new("plain", cand), &cand, |b, &cand| {
            b.iter(|| std::hint::black_box(search_plain(&yeast, &[cand], 5, 30, 3)))
        });
    }
    g.finish();

    // CoPhIR-style expensive metric: client-side refinement dominates.
    let cophir = Which::Cophir.dataset(3000, 12);
    let mut g = c.benchmark_group("search_cophir_30nn");
    g.sample_size(10);
    for cand in [150usize, 600] {
        g.bench_with_input(BenchmarkId::new("encrypted", cand), &cand, |b, &cand| {
            b.iter(|| std::hint::black_box(search_encrypted(&cophir, &[cand], 3, 30, 3)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
