//! Search benchmarks — paper Tables 5–8 (encrypted vs plain approximate
//! k-NN across candidate-set sizes), measured **steady-state**: the index
//! is built once per dataset outside the timed region and every iteration
//! runs one pass over the query workload against it. (The seed bench
//! rebuilt the index inside each iteration; construction now has its own
//! bench in `construction.rs`, and `BENCH_steady.json` records the
//! queries/s baselines.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simcloud_bench::{dataset_config, prebuild, steady_state_encrypted, Which};
use simcloud_metric::{ObjectId, PivotSelection};
use simcloud_mindex::PlainMIndex;
use simcloud_storage::MemoryStore;

fn bench_search(c: &mut Criterion) {
    const QUERIES: usize = 5;
    let yeast = prebuild(Which::Yeast.dataset(1500, 11), QUERIES, 3);
    let mut g = c.benchmark_group("steady_search_yeast_30nn");
    g.sample_size(10);
    g.throughput(Throughput::Elements(QUERIES as u64));
    for cand in [150usize, 600] {
        g.bench_with_input(BenchmarkId::new("encrypted", cand), &cand, |b, &cand| {
            b.iter(|| std::hint::black_box(steady_state_encrypted(&yeast, cand, 30, 1, 1, 7)));
        });
    }
    // Plain comparison: same pre-built-index discipline, same dataset and
    // query workload as the encrypted rows (reused from `yeast` so the
    // encrypted-vs-plain gap is apples-to-apples by construction).
    {
        let ds = &yeast.dataset;
        let cfg = dataset_config(ds);
        let pivots = simcloud_metric::select_pivots(
            &ds.vectors,
            cfg.num_pivots,
            &ds.metric,
            PivotSelection::Random,
            3,
        );
        let mut plain =
            PlainMIndex::new(cfg, pivots, ds.metric.clone(), MemoryStore::new()).unwrap();
        for (i, v) in ds.vectors.iter().enumerate() {
            plain.insert(ObjectId(i as u64), v).unwrap();
        }
        let workload = &yeast.workload;
        for cand in [150usize, 600] {
            g.bench_with_input(BenchmarkId::new("plain", cand), &cand, |b, &cand| {
                b.iter(|| {
                    for q in &workload.queries {
                        std::hint::black_box(plain.knn_approx(q, 30, cand).unwrap());
                    }
                });
            });
        }
    }
    g.finish();

    // CoPhIR-style expensive metric: client-side refinement dominates.
    const CQUERIES: usize = 3;
    let cophir = prebuild(Which::Cophir.dataset(3000, 12), CQUERIES, 3);
    let mut g = c.benchmark_group("steady_search_cophir_30nn");
    g.sample_size(10);
    g.throughput(Throughput::Elements(CQUERIES as u64));
    for cand in [150usize, 600] {
        g.bench_with_input(BenchmarkId::new("encrypted", cand), &cand, |b, &cand| {
            b.iter(|| std::hint::black_box(steady_state_encrypted(&cophir, cand, 30, 1, 1, 7)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
