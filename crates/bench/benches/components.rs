//! Component micro-benchmarks: the algorithmic primitives inside the
//! M-Index hot paths (permutation computation, promise ranking, pivot
//! filtering, cell-tree routing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcloud_metric::{permutation_from_distances, Metric, Vector, L1};
use simcloud_mindex::pruning::{pivot_filter_keep, pivot_filter_lower_bound};
use simcloud_mindex::PromiseEvaluator;

fn bench_permutation(c: &mut Criterion) {
    let mut g = c.benchmark_group("pivot_permutation");
    for n in [30usize, 50, 100] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let ds: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &ds, |b, ds| {
            b.iter(|| std::hint::black_box(permutation_from_distances(ds)));
        });
    }
    g.finish();
}

fn bench_promise(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let ds: Vec<f64> = (0..100).map(|_| rng.gen_range(0.0..100.0)).collect();
    let ev = PromiseEvaluator::from_distances(ds.clone());
    let prefix: Vec<u16> = vec![17, 42, 63, 8];
    c.bench_function("promise_prefix_penalty", |b| {
        b.iter(|| std::hint::black_box(ev.prefix_penalty(&prefix)));
    });
    let perm = permutation_from_distances(&ds);
    let pev = PromiseEvaluator::from_permutation(perm);
    c.bench_function("promise_prefix_penalty_permutation", |b| {
        b.iter(|| std::hint::black_box(pev.prefix_penalty(&prefix)));
    });
}

fn bench_pivot_filter(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let q: Vec<f64> = (0..100).map(|_| rng.gen_range(0.0..100.0)).collect();
    let objects: Vec<Vec<f32>> = (0..1000)
        .map(|_| (0..100).map(|_| rng.gen_range(0.0f32..100.0)).collect())
        .collect();
    c.bench_function("pivot_filter_1000_objects", |b| {
        b.iter(|| {
            let mut kept = 0usize;
            for o in &objects {
                if pivot_filter_keep(&q, o, 30.0) {
                    kept += 1;
                }
            }
            std::hint::black_box(kept)
        });
    });
    c.bench_function("pivot_filter_lower_bound", |b| {
        b.iter(|| std::hint::black_box(pivot_filter_lower_bound(&q, &objects[0])));
    });
}

fn bench_metric_eval(c: &mut Criterion) {
    // The L1/CombinedMetric costs that dominate the paper's CoPhIR rows.
    let mut rng = StdRng::seed_from_u64(7);
    let mut mk =
        |dim: usize| Vector::new((0..dim).map(|_| rng.gen_range(-10.0f32..10.0)).collect());
    let a17 = mk(17);
    let b17 = mk(17);
    c.bench_function("l1_17d", |b| {
        b.iter(|| std::hint::black_box(L1.distance(&a17, &b17)));
    });
    let comb = simcloud_metric::CombinedMetric::cophir_default();
    let a282 = mk(282);
    let b282 = mk(282);
    c.bench_function("combined_282d", |b| {
        b.iter(|| std::hint::black_box(comb.distance(&a282, &b282)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_permutation, bench_promise, bench_pivot_filter, bench_metric_eval
}
criterion_main!(benches);
