//! Query throughput and error rate under injected network faults — the
//! bench behind `BENCH_faults.json`.
//!
//! One budgeted encrypted server on a real TCP loopback socket (budget 0:
//! every query is a genuine two-phase ApproxKnn → FetchObjects
//! conversation), four client-side fault profiles through the transport's
//! [`FaultScript`] harness:
//!
//! 1. **baseline** — quiet wire; the reference q/s.
//! 2. **delay** — every 10th response read stalls 30 ms, under the read
//!    timeout: pure added latency, zero retries (asserted).
//! 3. **drop** — every 15th socket op in each direction vanishes: the read
//!    timeout fires, the retry resends, every query still answers
//!    (asserted — the error-rate column must be 0 with retries enabled).
//! 4. **cut** — every 40th response read kills the connection: the client
//!    reconnects and replays; again zero failed queries.
//!
//! Reported per profile: queries/s, error rate, and the transport's retry
//! and reconnect counters — the cost of the fault tolerance, measured.
//!
//! ```text
//! cargo bench -p simcloud-bench --bench faults            # full scale
//! cargo bench -p simcloud-bench --bench faults -- --quick # CI scale
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcloud_core::{
    client_for, serve_tcp_concurrent_with, ClientConfig, CloudServer, EncryptedClient, SecretKey,
    ServerConfig,
};
use simcloud_metric::{ObjectId, PivotSelection, Vector, L2};
use simcloud_mindex::{MIndexConfig, RoutingStrategy};
use simcloud_storage::MemoryStore;
use simcloud_transport::{
    Direction, FaultAction, FaultRule, FaultScript, RetryPolicy, ServeOptions, TcpClientConfig,
    TcpTransport, Transport,
};

struct Config {
    n: usize,
    dim: usize,
    queries: usize,
    k: usize,
    cand_size: usize,
}

fn client_config() -> TcpClientConfig {
    TcpClientConfig {
        read_timeout: Some(Duration::from_millis(100)),
        request_deadline: Some(Duration::from_secs(5)),
        retry: RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
            jitter_seed: 0xfau64,
        },
        ..TcpClientConfig::default()
    }
}

fn profiles() -> Vec<(&'static str, Vec<FaultRule>)> {
    vec![
        ("baseline", vec![]),
        (
            "delay",
            vec![FaultRule::every(
                Direction::Recv,
                10,
                FaultAction::Delay(Duration::from_millis(30)),
            )],
        ),
        (
            "drop",
            vec![
                FaultRule::every(Direction::Send, 15, FaultAction::Drop),
                FaultRule::every(Direction::Recv, 15, FaultAction::Drop),
            ],
        ),
        (
            "cut",
            vec![FaultRule::every(Direction::Recv, 40, FaultAction::Cut)],
        ),
    ]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        Config {
            n: 200,
            dim: 4,
            queries: 40,
            k: 5,
            cand_size: 20,
        }
    } else {
        Config {
            n: 2_000,
            dim: 6,
            queries: 400,
            k: 10,
            cand_size: 50,
        }
    };
    println!(
        "faults bench: {} objects dim {}, {} queries x {}-NN/{} candidates ({})",
        cfg.n,
        cfg.dim,
        cfg.queries,
        cfg.k,
        cfg.cand_size,
        if quick { "quick" } else { "full" },
    );

    // One loaded budget-0 server shared by every profile (queries are
    // read-only), serving with production-shaped options.
    let mut rng = StdRng::seed_from_u64(42);
    let vectors: Vec<Vector> = (0..cfg.n)
        .map(|_| Vector::new((0..cfg.dim).map(|_| rng.gen_range(-8.0f32..8.0)).collect()))
        .collect();
    let (key, _) = SecretKey::generate(&vectors, 8, &L2, PivotSelection::Random, 7);
    let server = Arc::new(
        CloudServer::with_config(
            MIndexConfig {
                num_pivots: 8,
                max_level: 3,
                bucket_capacity: 64,
                strategy: RoutingStrategy::Distances,
            },
            ServerConfig::budgeted(0),
            MemoryStore::new(),
        )
        .expect("server"),
    );
    let mut owner = client_for(
        key.clone(),
        L2,
        Arc::clone(&server),
        ClientConfig::distances(),
    )
    .with_rng_seed(1);
    let objects: Vec<(ObjectId, Vector)> = vectors
        .iter()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v.clone()))
        .collect();
    owner.insert_bulk(&objects).expect("load");
    drop(owner);
    let handle = serve_tcp_concurrent_with(
        Arc::clone(&server),
        ServeOptions {
            read_timeout: Some(Duration::from_millis(500)),
            drain_timeout: Duration::from_secs(2),
            ..ServeOptions::default()
        },
    )
    .expect("serve");

    let mut json = String::from("{\n");
    let mut baseline_qps = 0.0f64;
    for (name, rules) in profiles() {
        let script = FaultScript::new(rules);
        let transport =
            TcpTransport::connect_faulty(handle.addr(), client_config(), Arc::clone(&script))
                .expect("connect");
        let mut client =
            EncryptedClient::new(key.clone(), L2, transport, ClientConfig::distances());

        let mut ok = 0usize;
        let mut errors = 0usize;
        let start = Instant::now();
        for i in 0..cfg.queries {
            let q = &vectors[(i * 31) % vectors.len()];
            match client.knn_approx(q, cfg.k, cfg.cand_size) {
                Ok(_) => ok += 1,
                Err(_) => errors += 1,
            }
        }
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        let qps = ok as f64 / secs;
        let error_rate = errors as f64 / cfg.queries as f64;
        let stats = client.transport().stats();
        println!(
            "  {name:<9} {qps:>8.0} q/s  error-rate {error_rate:.3}  \
             ({} retries, {} reconnects, {} injected faults)",
            stats.retries,
            stats.reconnects,
            script.injected()
        );
        json.push_str(&format!(
            "  \"{name}\": {{ \"qps\": {qps:.0}, \"error_rate\": {error_rate:.4}, \
             \"retries\": {}, \"reconnects\": {}, \"injected\": {} }},\n",
            stats.retries,
            stats.reconnects,
            script.injected()
        ));
        match name {
            "baseline" => {
                baseline_qps = qps;
                assert_eq!(errors, 0, "baseline must be error-free");
                assert_eq!(stats.retries, 0, "baseline must not retry");
            }
            "delay" => {
                assert_eq!(errors, 0, "sub-timeout delays must not fail queries");
                assert_eq!(stats.retries, 0, "sub-timeout delays must not retry");
            }
            _ => {
                assert_eq!(
                    errors, 0,
                    "{name}: with retries enabled every query must answer"
                );
                assert!(stats.retries > 0, "{name}: the profile must have bitten");
            }
        }
        drop(client);
    }
    json.push_str(&format!("  \"baseline_qps\": {baseline_qps:.0},\n"));
    json.push_str("  \"scale\": \"");
    json.push_str(if quick { "quick" } else { "full" });
    json.push_str("\"\n}");
    println!("\nJSON summary:\n{json}");
    handle.shutdown();
}
