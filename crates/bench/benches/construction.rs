//! Construction benchmarks — paper Tables 3 & 4 (encrypted vs plain index
//! build). Reduced cardinalities keep criterion runs short; the `repro`
//! binary regenerates the full tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simcloud_bench::{construction_encrypted, construction_plain, Which};

fn bench_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("construction");
    g.sample_size(10);
    for (which, n) in [(Which::Yeast, 1000usize), (Which::Human, 1000)] {
        let ds = which.dataset(n, 7);
        g.bench_with_input(BenchmarkId::new("encrypted", &ds.name), &ds, |b, ds| {
            b.iter(|| std::hint::black_box(construction_encrypted(ds, 1)));
        });
        g.bench_with_input(BenchmarkId::new("plain", &ds.name), &ds, |b, ds| {
            b.iter(|| std::hint::black_box(construction_plain(ds, 1)));
        });
    }
    // CoPhIR's expensive combined metric at small cardinality: shows the
    // encryption share vanishing relative to distance computations
    // (the paper's Table 3 CoPhIR observation).
    let cophir = Which::Cophir.dataset(500, 7);
    g.bench_function("encrypted/CoPhIR-500", |b| {
        b.iter(|| std::hint::black_box(construction_encrypted(&cophir, 1)));
    });
    g.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
