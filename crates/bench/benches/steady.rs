//! Steady-state encrypted kNN throughput against a pre-built index —
//! single-thread vs concurrent serving vs the batch API.
//!
//! Custom harness (no per-sample statistics): each configuration runs a
//! fixed query volume and reports aggregate queries/second plus the
//! multi-thread speedup over single-thread. The JSON block at the end is
//! the format committed to `BENCH_steady.json`.
//!
//! ```text
//! cargo bench -p simcloud-bench --bench steady                       # full scale
//! cargo bench -p simcloud-bench --bench steady -- --quick            # CI scale
//! cargo bench -p simcloud-bench --bench steady -- --shards 4         # sharded server
//! ```
//!
//! Interpreting the speedup: the query path is CPU-bound, so the 4-thread
//! number scales with the *cores actually available* — on a single-vCPU
//! container it stays ~1x by physics, on a 4-core runner the shared-read
//! server reaches ~Nx because queries never serialize on the index.
//! `--shards N` (default 1) swaps in a hash-routed `ShardedCloudServer`
//! behind the same wire; dedicated sharded-vs-single comparisons live in
//! `--bench shard`.

use simcloud_bench::{
    prebuild, prebuild_sharded, shards_arg, shards_suffix, steady_state_batch,
    steady_state_encrypted, RouterKind, SteadyState, Which,
};
use simcloud_core::ServerConfig;

struct Config {
    n: usize,
    queries: usize,
    rounds: usize,
    cands: &'static [usize],
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let shards = shards_arg();
    // `cargo bench` passes --bench; ignore everything else.
    let cfg = if quick {
        Config {
            n: 600,
            queries: 10,
            rounds: 2,
            cands: &[150],
        }
    } else {
        Config {
            n: 1500,
            queries: 30,
            rounds: 4,
            cands: &[150, 600],
        }
    };
    let k = 30;
    let threads_sweep = [1usize, 2, 4];

    println!(
        "steady-state encrypted {k}-NN, YEAST n={}, {} queries x {} rounds, {} cores online, {} shard(s)",
        cfg.n,
        cfg.queries,
        cfg.rounds,
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        shards
    );
    let ds = Which::Yeast.dataset(cfg.n, 11);
    let pre = if shards > 1 {
        prebuild_sharded(
            ds,
            cfg.queries,
            3,
            ServerConfig::default(),
            shards,
            RouterKind::Hash,
        )
    } else {
        prebuild(ds, cfg.queries, 3)
    };

    let mut json = String::from("{\n");
    // Sharded runs get distinct JSON keys; the default keys stay stable.
    let suffix = shards_suffix(shards);
    for &cand in cfg.cands {
        let mut single_qps = 0.0;
        for &threads in &threads_sweep {
            let r: SteadyState = steady_state_encrypted(&pre, cand, k, threads, cfg.rounds, 7);
            let qps = r.queries_per_second();
            if threads == 1 {
                single_qps = qps;
            }
            let speedup = qps / single_qps;
            println!(
                "  cand={cand:<4} threads={threads}  {qps:>8.1} queries/s  ({speedup:.2}x vs 1 thread)"
            );
            json.push_str(&format!(
                "  \"steady_yeast_30nn/cand{cand}/threads{threads}{suffix}\": {{ \"queries_per_s\": {qps:.1}, \"speedup_vs_single\": {speedup:.2} }},\n"
            ));
        }
        let b = steady_state_batch(&pre, cand, k, cfg.queries, cfg.rounds, 7);
        let bqps = b.queries_per_second();
        println!(
            "  cand={cand:<4} batch-api  {:>8.1} queries/s  (one round trip per {} queries)",
            bqps, cfg.queries
        );
        json.push_str(&format!(
            "  \"steady_yeast_30nn/cand{cand}/batch{}{suffix}\": {{ \"queries_per_s\": {bqps:.1} }},\n",
            cfg.queries
        ));
    }
    json.push_str("  \"scale\": \"");
    json.push_str(if quick { "quick" } else { "full" });
    json.push_str("\"\n}");
    println!("\nJSON summary:\n{json}");
}
