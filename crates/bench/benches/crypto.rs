//! Crypto micro-benchmarks: the encryption-layer cost drivers behind the
//! paper's "Encryption time" and "Decryption time" rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simcloud_crypto::envelope::EnvelopeMode;
use simcloud_crypto::{Aes, CipherKey, Sha256};

fn bench_aes_block(c: &mut Criterion) {
    let aes = Aes::new(b"0123456789abcdef").unwrap();
    c.bench_function("aes128_encrypt_block", |b| {
        let mut block = [0x42u8; 16];
        b.iter(|| {
            aes.encrypt_block(&mut block);
            std::hint::black_box(&block);
        });
    });
}

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xA5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| std::hint::black_box(Sha256::digest(data)));
        });
    }
    g.finish();
}

fn bench_seal_unseal(c: &mut Criterion) {
    let key = CipherKey::derive_from_master(b"bench master");
    let mut g = c.benchmark_group("envelope");
    // A YEAST object is 17 floats (~72 B), a CoPhIR object ~1.1 kB.
    for (label, size) in [("yeast_obj", 72usize), ("cophir_obj", 1132)] {
        let plain = vec![0x3Cu8; size];
        let mut rng = StdRng::seed_from_u64(1);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(BenchmarkId::new("seal_ctr", label), |b| {
            b.iter(|| std::hint::black_box(key.seal(&plain, EnvelopeMode::Ctr, &mut rng)));
        });
        let sealed = key.seal(&plain, EnvelopeMode::Ctr, &mut rng);
        g.bench_function(BenchmarkId::new("unseal_ctr", label), |b| {
            b.iter(|| std::hint::black_box(key.unseal(&sealed).unwrap()));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_aes_block, bench_sha256, bench_seal_unseal
}
criterion_main!(benches);
