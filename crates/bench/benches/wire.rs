//! Wire cost of the two-phase candidate fetch — the bench behind
//! `BENCH_wire.json`.
//!
//! Same steady-state YEAST 30-NN workload as `--bench refine` (index built
//! once outside the timed region, member queries driven against it), run
//! over identical data in three configurations:
//!
//! * **eager** — unbudgeted server (everything inlined), `LazyRefine::Off`:
//!   the pre-two-phase wire, every sealed candidate shipped and decrypted;
//! * **lazy 1-phase** — unbudgeted server, sound early exit: the
//!   `BENCH_refine.json` baseline — decryption is on demand but the wire
//!   still carries every payload;
//! * **lazy 2-phase** — byte-budgeted server (headers for everything,
//!   payloads inlined for ≈ the first `α·k` candidates) + the client's
//!   adaptive `FetchObjects` batches: payloads ship only as refinement
//!   demands them.
//!
//! Each lazy row is additionally measured over a **real TCP loopback
//! socket** (`serve_tcp_concurrent` + `connect_tcp`), so the extra phase-2
//! round trips pay their true syscall latency. The binary asserts that the
//! two-phase row fetches fewer objects than it has candidates and that its
//! response bytes undercut the one-phase wire.
//!
//! ```text
//! cargo bench -p simcloud-bench --bench wire                 # full scale
//! cargo bench -p simcloud-bench --bench wire -- --quick      # CI scale
//! cargo bench -p simcloud-bench --bench wire -- --shards 4   # sharded server
//! ```
//!
//! `--shards N` (default 1) runs the identical comparison against a
//! hash-routed `ShardedCloudServer` — the wire (phase-1 lists, phase-2
//! fetches, budgets) is byte-compatible, so the same assertions apply.

use simcloud_bench::{
    prebuild_sharded, prebuild_with, shards_arg, shards_suffix, steady_state_encrypted_tcp,
    steady_state_encrypted_with, PreBuilt, RouterKind, SteadyState, Which,
};
use simcloud_core::{ClientConfig, LazyRefine, ServerConfig};
use simcloud_crypto::envelope::EnvelopeMode;
use simcloud_crypto::CipherKey;

struct Config {
    n: usize,
    queries: usize,
    rounds: usize,
    cands: &'static [usize],
    /// Sealed payloads the server inlines in phase 1 (≈ `α·k`). Quick
    /// scale decrypts far fewer candidates per query than full scale, so
    /// it inlines less to keep phase 2 exercised on CI.
    inline_n: usize,
}

/// Inline budget that fits all headers plus ≈ `inline_n` sealed payloads —
/// mirrors the server's `stage()` accounting (tag + counts + 16/header +
/// (4 + sealed)/payload).
fn budget_for(cand: usize, inline_n: usize, sealed_payload: usize) -> usize {
    1 + 4 + 16 * cand + 4 + inline_n * (4 + sealed_payload)
}

fn row(label: &str, s: &SteadyState, eager_bytes: f64) -> String {
    let reduction = 100.0 * (1.0 - s.bytes_received_per_query() / eager_bytes);
    println!(
        "  {label:<22} {:>8.1} queries/s  {:>9.0} B recv/query ({reduction:>5.1}% less) \
         decrypts {:>5.1}, fetches {:>5.1} in {:.2} round trips",
        s.queries_per_second(),
        s.bytes_received_per_query(),
        s.mean_decrypted(),
        s.mean_fetched(),
        s.mean_fetch_requests(),
    );
    format!(
        "{{ \"queries_per_s\": {:.1}, \"recv_bytes_per_query\": {:.0}, \"sent_bytes_per_query\": {:.0}, \
         \"recv_reduction_vs_eager_pct\": {:.1}, \"mean_decrypted\": {:.1}, \"mean_candidates\": {:.1}, \
         \"mean_fetched\": {:.1}, \"mean_fetch_round_trips\": {:.2} }}",
        s.queries_per_second(),
        s.bytes_received_per_query(),
        s.bytes_sent_per_query(),
        reduction,
        s.mean_decrypted(),
        s.mean_candidates(),
        s.mean_fetched(),
        s.mean_fetch_requests(),
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let shards = shards_arg();
    let k = 30;
    let cfg = if quick {
        Config {
            n: 600,
            queries: 10,
            rounds: 2,
            cands: &[150],
            inline_n: k,
        }
    } else {
        Config {
            n: 1500,
            queries: 30,
            rounds: 4,
            cands: &[600],
            inline_n: 4 * k,
        }
    };

    println!(
        "two-phase wire cost, encrypted {k}-NN, YEAST n={}, {} queries x {} rounds, {} shard(s)",
        cfg.n, cfg.queries, cfg.rounds, shards
    );
    let ds = Which::Yeast.dataset(cfg.n, 11);
    let sealed_payload = CipherKey::sealed_len(ds.vectors[0].encoded_len(), EnvelopeMode::Ctr);
    let build = |server_config: ServerConfig| -> PreBuilt {
        if shards > 1 {
            prebuild_sharded(
                ds.clone(),
                cfg.queries,
                3,
                server_config,
                shards,
                RouterKind::Hash,
            )
        } else {
            prebuild_with(ds.clone(), cfg.queries, 3, server_config)
        }
    };
    let full = build(ServerConfig::default());

    let mut json = String::from("{\n");
    // Sharded runs get distinct JSON keys; the default keys stay stable.
    let suffix = shards_suffix(shards);
    for &cand in cfg.cands {
        let budget = budget_for(cand, cfg.inline_n, sealed_payload);
        let budgeted = build(ServerConfig::budgeted(budget));
        println!(
            "cand={cand}, inline budget {budget} B (~{} payloads)",
            cfg.inline_n
        );

        let eager = steady_state_encrypted_with(
            &full,
            &ClientConfig::distances().with_lazy_refine(LazyRefine::Off),
            cand,
            k,
            1,
            cfg.rounds,
            7,
        );
        let lazy1 = steady_state_encrypted_with(
            &full,
            &ClientConfig::distances(),
            cand,
            k,
            1,
            cfg.rounds,
            7,
        );
        let lazy2 = steady_state_encrypted_with(
            &budgeted,
            &ClientConfig::distances(),
            cand,
            k,
            1,
            cfg.rounds,
            7,
        );
        let tcp1 =
            steady_state_encrypted_tcp(&full, &ClientConfig::distances(), cand, k, cfg.rounds);
        let tcp2 =
            steady_state_encrypted_tcp(&budgeted, &ClientConfig::distances(), cand, k, cfg.rounds);

        let eager_bytes = eager.bytes_received_per_query();
        for (label, s) in [
            ("eager 1-phase", &eager),
            ("lazy 1-phase", &lazy1),
            ("lazy 2-phase", &lazy2),
            ("lazy 1-phase TCP", &tcp1),
            ("lazy 2-phase TCP", &tcp2),
        ] {
            json.push_str(&format!(
                "  \"wire_yeast_30nn/cand{cand}/{}{suffix}\": {},\n",
                label.replace(' ', "_"),
                row(label, s, eager_bytes)
            ));
        }

        // The contract the CI run enforces: phase 2 must actually skip
        // payload transfers, not merely restage them.
        assert!(
            lazy2.fetched < lazy2.candidates,
            "two-phase lazy fetched {} of {} candidates — phase 2 saved nothing",
            lazy2.fetched,
            lazy2.candidates
        );
        assert!(
            lazy2.fetched > 0,
            "budget inlined everything — phase 2 was never exercised"
        );
        assert!(
            lazy2.bytes_received < lazy1.bytes_received,
            "two-phase wire ({} B) must undercut one-phase ({} B)",
            lazy2.bytes_received,
            lazy1.bytes_received
        );
        assert_eq!(
            lazy2.decrypted, lazy1.decrypted,
            "the early exit must be unaffected by payload staging"
        );
    }
    json.push_str("  \"scale\": \"");
    json.push_str(if quick { "quick" } else { "full" });
    json.push_str("\"\n}");
    println!("\nJSON summary:\n{json}");
}
