//! Baseline comparison benchmark — paper Table 9 (1-NN on YEAST versus
//! EHI / MPT / FDH / trivial download-all).

use criterion::{criterion_group, criterion_main, Criterion};
use simcloud_bench::{comparison_1nn, Which};

fn bench_comparison(c: &mut Criterion) {
    let yeast = Which::Yeast.dataset(1200, 21);
    let mut g = c.benchmark_group("table9_1nn_comparison");
    g.sample_size(10);
    g.bench_function("all_schemes", |b| {
        b.iter(|| std::hint::black_box(comparison_1nn(&yeast, 10, 5)));
    });
    g.finish();
}

criterion_group!(benches, bench_comparison);
criterion_main!(benches);
