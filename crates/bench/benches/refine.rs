//! Lazy (decrypt-on-demand) vs eager candidate refinement — the
//! encrypted-search-gap bench behind `BENCH_refine.json`.
//!
//! Same steady-state YEAST 30-NN workload as `--bench steady` (index built
//! once outside the timed region, member queries driven against it), run
//! twice over identical server state: once with `LazyRefine::Off` (the
//! paper's eager Alg. 2 loop, decrypting every candidate) and once with the
//! default sound early exit. Reported per configuration: queries/s, the
//! speedup, and mean candidates decrypted vs received — the early-exit rate
//! the paper tables cite.
//!
//! ```text
//! cargo bench -p simcloud-bench --bench refine            # full scale
//! cargo bench -p simcloud-bench --bench refine -- --quick # CI scale
//! ```

use simcloud_bench::{prebuild, steady_state_encrypted_with, SteadyState, Which};
use simcloud_core::{ClientConfig, LazyRefine};

struct Config {
    n: usize,
    queries: usize,
    rounds: usize,
    cands: &'static [usize],
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        Config {
            n: 600,
            queries: 10,
            rounds: 2,
            cands: &[150],
        }
    } else {
        Config {
            n: 1500,
            queries: 30,
            rounds: 4,
            cands: &[150, 600],
        }
    };
    let k = 30;

    println!(
        "lazy vs eager refinement, encrypted {k}-NN, YEAST n={}, {} queries x {} rounds",
        cfg.n, cfg.queries, cfg.rounds
    );
    let pre = prebuild(Which::Yeast.dataset(cfg.n, 11), cfg.queries, 3);

    let mut json = String::from("{\n");
    for &cand in cfg.cands {
        let eager: SteadyState = steady_state_encrypted_with(
            &pre,
            &ClientConfig::distances().with_lazy_refine(LazyRefine::Off),
            cand,
            k,
            1,
            cfg.rounds,
            7,
        );
        let lazy: SteadyState = steady_state_encrypted_with(
            &pre,
            &ClientConfig::distances(),
            cand,
            k,
            1,
            cfg.rounds,
            7,
        );
        let speedup = lazy.queries_per_second() / eager.queries_per_second();
        println!(
            "  cand={cand:<4} eager {:>8.1} queries/s  (decrypts {:.0}/query)",
            eager.queries_per_second(),
            eager.mean_decrypted()
        );
        println!(
            "  cand={cand:<4} lazy  {:>8.1} queries/s  (decrypts {:.1} of {:.0}/query, {speedup:.2}x)",
            lazy.queries_per_second(),
            lazy.mean_decrypted(),
            lazy.mean_candidates()
        );
        json.push_str(&format!(
            "  \"refine_yeast_30nn/cand{cand}/eager\": {{ \"queries_per_s\": {:.1}, \"mean_decrypted\": {:.1}, \"mean_candidates\": {:.1} }},\n",
            eager.queries_per_second(),
            eager.mean_decrypted(),
            eager.mean_candidates(),
        ));
        json.push_str(&format!(
            "  \"refine_yeast_30nn/cand{cand}/lazy\": {{ \"queries_per_s\": {:.1}, \"mean_decrypted\": {:.1}, \"mean_candidates\": {:.1}, \"speedup_vs_eager\": {speedup:.2} }},\n",
            lazy.queries_per_second(),
            lazy.mean_decrypted(),
            lazy.mean_candidates(),
        ));
        assert!(
            lazy.decrypted < lazy.candidates,
            "lazy refinement never exited early (decrypted {} of {})",
            lazy.decrypted,
            lazy.candidates
        );
    }
    json.push_str("  \"scale\": \"");
    json.push_str(if quick { "quick" } else { "full" });
    json.push_str("\"\n}");
    println!("\nJSON summary:\n{json}");
}
