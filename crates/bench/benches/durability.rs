//! Durability cost and recovery speed — the bench behind
//! `BENCH_durability.json`.
//!
//! Three measurements over the crash-safe paged store:
//!
//! 1. **Commit throughput, WAL on vs off** — identical append/flush
//!    schedules against a real file; the WAL-on run pays a full-page
//!    image plus fsync per dirty page per commit, the WAL-off run (for
//!    rebuildable / scratch data) checkpoints directly. Both stores must
//!    verify CRC-clean and hold identical data afterwards (asserted).
//! 2. **Commit latency by batch size** — records committed per second as
//!    the flush interval grows: the WAL amortizes, showing why the engine
//!    batches instead of committing per append.
//! 3. **Crash recovery** — a fault-injected run is killed mid-checkpoint
//!    (after the WAL commit point); the reopen must replay the log and
//!    serve every committed record (asserted), timed.
//!
//! ```text
//! cargo bench -p simcloud-bench --bench durability            # full scale
//! cargo bench -p simcloud-bench --bench durability -- --quick # CI scale
//! ```

use std::time::Instant;

use simcloud_storage::{
    BucketId, BucketStore, CrashMode, DiskStore, DiskStoreOptions, FaultEnv, FaultPlan, FileEnv,
    Record,
};

struct Config {
    records: usize,
    payload: usize,
    buckets: u64,
    flush_every: usize,
}

fn rec(id: u64, len: usize) -> Record {
    Record::new(
        id,
        (0..len).map(|i| ((id as usize + i) % 256) as u8).collect(),
    )
}

/// Appends `cfg.records` records, flushing every `flush_every`, returns
/// (records/s, flush count).
fn run_schedule(store: &mut DiskStore, cfg: &Config, flush_every: usize) -> (f64, usize) {
    let start = Instant::now();
    let mut flushes = 0;
    for i in 0..cfg.records {
        let id = i as u64;
        store
            .append(BucketId(id % cfg.buckets), rec(id, cfg.payload))
            .expect("append");
        if (i + 1) % flush_every == 0 {
            store.flush().expect("flush");
            flushes += 1;
        }
    }
    store.flush().expect("final flush");
    flushes += 1;
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (cfg.records as f64 / secs, flushes)
}

fn bucket_fingerprint(store: &DiskStore, buckets: u64) -> Vec<(u64, usize)> {
    (0..buckets)
        .map(|b| (b, store.read_bucket(BucketId(b)).expect("read").len()))
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        Config {
            records: 2_000,
            payload: 256,
            buckets: 8,
            flush_every: 200,
        }
    } else {
        Config {
            records: 20_000,
            payload: 512,
            buckets: 16,
            flush_every: 500,
        }
    };
    println!(
        "durability bench: {} records x {}B, {} buckets, commit every {} ({})",
        cfg.records,
        cfg.payload,
        cfg.buckets,
        cfg.flush_every,
        if quick { "quick" } else { "full" },
    );
    let mut json = String::from("{\n");

    // ---- 1. WAL on vs off over a real file --------------------------------
    let dir = std::env::temp_dir();
    let mut results = Vec::new();
    for wal in [true, false] {
        let path = dir.join(format!(
            "simcloud-dur-{}-{}.db",
            std::process::id(),
            if wal { "wal" } else { "nowal" }
        ));
        let opts = DiskStoreOptions {
            wal,
            ..DiskStoreOptions::default()
        };
        let mut store = DiskStore::create_opts(&path, opts).expect("create");
        let (rps, flushes) = run_schedule(&mut store, &cfg, cfg.flush_every);
        store.verify().expect("store verifies after commits");
        let stats = store.stats();
        let label = if wal { "wal_on" } else { "wal_off" };
        println!(
            "  commit/{label:<8} {rps:>9.0} records/s  ({flushes} commits, {} WAL appends, {} page writes)",
            stats.wal_appends, stats.page_writes
        );
        json.push_str(&format!(
            "  \"commit/{label}\": {{ \"records_per_s\": {rps:.0}, \"commits\": {flushes}, \
             \"wal_appends\": {}, \"page_writes\": {} }},\n",
            stats.wal_appends, stats.page_writes
        ));
        results.push((wal, rps, bucket_fingerprint(&store, cfg.buckets)));
        drop(store);
        FileEnv::remove_sidecars(&path);
        let _ = std::fs::remove_file(&path);
    }
    // Same schedule, same data — the WAL must change cost, not content.
    assert_eq!(
        results[0].2, results[1].2,
        "WAL on/off stores diverged in content"
    );
    let overhead = results[1].1 / results[0].1.max(1e-9);
    println!("  WAL overhead: {overhead:.2}x faster without the log (durability is the price)");
    json.push_str(&format!("  \"wal_overhead_factor\": {overhead:.2},\n"));

    // ---- 2. Commit latency by batch size ----------------------------------
    for batch in [cfg.flush_every / 10, cfg.flush_every, cfg.flush_every * 4] {
        let batch = batch.max(1);
        let path = dir.join(format!("simcloud-dur-{}-b{batch}.db", std::process::id()));
        let mut store = DiskStore::create(&path).expect("create");
        let (rps, flushes) = run_schedule(&mut store, &cfg, batch);
        drop(store);
        FileEnv::remove_sidecars(&path);
        let _ = std::fs::remove_file(&path);
        println!("  commit_batch/{batch:<6} {rps:>9.0} records/s  ({flushes} commits)");
        json.push_str(&format!(
            "  \"commit_batch/{batch}\": {{ \"records_per_s\": {rps:.0}, \"commits\": {flushes} }},\n"
        ));
    }

    // ---- 3. Crash recovery time -------------------------------------------
    // Record the fault-free schedule, then crash mid-checkpoint (on the
    // final flush's last in-place page write, with everything after the
    // WAL commit point still unsynced) and time the reopen's replay.
    // A half-batch tail makes the final (crashed) flush carry real page
    // traffic instead of just the directory page.
    let crash_records = cfg.records + cfg.flush_every / 2;
    let drive = |store: &mut DiskStore| -> Result<(), simcloud_storage::StorageError> {
        for i in 0..crash_records {
            let id = i as u64;
            store.append(BucketId(id % cfg.buckets), rec(id, cfg.payload))?;
            if (i + 1) % cfg.flush_every == 0 {
                store.flush()?;
            }
        }
        store.flush()
    };

    let env = FaultEnv::new(FaultPlan::default());
    let handle = env.handle();
    let mut store =
        DiskStore::create_in(Box::new(env), DiskStoreOptions::default()).expect("create");
    drive(&mut store).expect("fault-free run");
    let expected = store.total_records();
    drop(store);
    let total_ops = handle.ops();

    // The flush epilogue is: …page checkpoints, pages.sync, store_meta,
    // wal.set_len(0), wal.sync — so `total_ops - 5` is the last checkpoint
    // write, and DropUnsynced discards the whole unsynced checkpoint.
    let plan = FaultPlan {
        crash_at: Some(total_ops - 5),
        mode: CrashMode::DropUnsynced,
        flip: None,
    };
    let env = FaultEnv::new(plan);
    let handle = env.handle();
    let mut store =
        DiskStore::create_in(Box::new(env), DiskStoreOptions::default()).expect("create");
    assert!(drive(&mut store).is_err(), "the injected crash must fire");
    drop(store);

    let image = handle.surviving();
    let wal_bytes = image.wal.len();
    let start = Instant::now();
    let reopened = DiskStore::open_in(
        Box::new(FaultEnv::from_images(image, FaultPlan::default())),
        DiskStoreOptions::default(),
    )
    .expect("recovery");
    let recover_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(reopened.recovered_on_open(), "recovery must run");
    reopened.verify().expect("recovered store verifies");
    assert_eq!(
        reopened.total_records(),
        expected,
        "crash after the commit point must lose nothing"
    );
    let stats = reopened.stats();
    println!(
        "  recovery: {recover_ms:.2} ms to replay {} pages from a {wal_bytes}-byte WAL \
         ({expected} records intact)",
        stats.pages_recovered
    );
    json.push_str(&format!(
        "  \"recovery\": {{ \"ms\": {recover_ms:.2}, \"pages_replayed\": {}, \
         \"wal_bytes\": {wal_bytes}, \"records\": {expected} }},\n",
        stats.pages_recovered
    ));

    json.push_str("  \"scale\": \"");
    json.push_str(if quick { "quick" } else { "full" });
    json.push_str("\"\n}");
    println!("\nJSON summary:\n{json}");
}
