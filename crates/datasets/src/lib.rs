//! # simcloud-datasets — synthetic stand-ins for the paper's data sets
//!
//! The evaluation (paper §5.1, Table 1) uses three real collections that are
//! not redistributable here:
//!
//! | Name   | records   | type                  | distance          |
//! |--------|-----------|-----------------------|-------------------|
//! | YEAST  | 2,882     | 17-dim num. vectors   | L1                |
//! | HUMAN  | 4,026     | 96-dim num. vectors   | L1                |
//! | CoPhIR | 1,000,000 | 280-dim num. vectors  | combination of Lp |
//!
//! This crate generates deterministic synthetic collections with the same
//! cardinality, dimensionality and metric, and with *clustered* structure
//! (Gaussian mixtures) so that pivot-based pruning and recall curves behave
//! like on real data. Gene-expression matrices are well modelled by a small
//! number of co-expression clusters plus noise; MPEG-7 descriptors by
//! cluster structure in descriptor space with per-block quantization. See
//! DESIGN.md ("Substitutions") for the argument why this preserves the
//! paper's observable behaviour.
//!
//! Also here: query workloads (the paper queries 100 random objects;
//! held-out versions for the 1-NN comparison of Table 9) and a
//! multi-threaded brute-force ground-truth engine (crossbeam) for recall.

#![warn(missing_docs)]

pub mod csvio;
pub mod generators;
pub mod ground_truth;
pub mod workload;

pub use generators::{cophir_like, human_like, yeast_like, GeneExpressionSpec};
pub use ground_truth::{parallel_knn_ground_truth, GroundTruth};
pub use workload::QueryWorkload;

use simcloud_metric::{CombinedMetric, Metric, Vector, L1};

/// Which metric a dataset is searched with.
#[derive(Debug, Clone)]
pub enum DatasetMetric {
    /// Manhattan distance (YEAST, HUMAN).
    L1,
    /// CoPhIR-style weighted combination of per-block Lp distances.
    Combined(CombinedMetric),
}

impl DatasetMetric {
    /// Metric trait object view.
    pub fn as_metric(&self) -> &dyn Metric<Vector> {
        match self {
            DatasetMetric::L1 => &L1,
            DatasetMetric::Combined(m) => m,
        }
    }

    /// Human-readable name matching the paper's Table 1 wording.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetMetric::L1 => "L1",
            DatasetMetric::Combined(_) => "combination of Lp",
        }
    }
}

/// `DatasetMetric` is itself a metric, so experiment code can stay
/// monomorphic over datasets with different distance functions.
impl Metric<Vector> for DatasetMetric {
    fn distance(&self, a: &Vector, b: &Vector) -> f64 {
        match self {
            DatasetMetric::L1 => L1.distance(a, b),
            DatasetMetric::Combined(m) => m.distance(a, b),
        }
    }

    fn name(&self) -> String {
        DatasetMetric::name(self).to_string()
    }
}

/// A generated dataset: records plus the metric they are searched with.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name ("YEAST", "HUMAN", "CoPhIR").
    pub name: String,
    /// The metric-space objects.
    pub vectors: Vec<Vector>,
    /// The associated metric.
    pub metric: DatasetMetric,
}

impl Dataset {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Dimensionality (0 for an empty dataset).
    pub fn dim(&self) -> usize {
        self.vectors.first().map_or(0, Vector::dim)
    }

    /// Table 1 row: name, record count, data type, distance function.
    pub fn summary_row(&self) -> String {
        format!(
            "{:<8} {:>9}   {:>3}-dim. num. vectors   {}",
            self.name,
            self.len(),
            self.dim(),
            self.metric.name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_row_matches_table1_shape() {
        let ds = yeast_like(7, None);
        let row = ds.summary_row();
        assert!(row.contains("YEAST"));
        assert!(row.contains("2882"));
        assert!(row.contains("17-dim"));
        assert!(row.contains("L1"));
    }

    #[test]
    fn metric_views() {
        let l1 = DatasetMetric::L1;
        assert_eq!(l1.name(), "L1");
        let a = Vector::new(vec![0.0, 1.0]);
        let b = Vector::new(vec![1.0, 3.0]);
        assert_eq!(l1.as_metric().distance(&a, &b), 3.0);
    }
}
