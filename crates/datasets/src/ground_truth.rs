//! Parallel brute-force ground truth for recall computation.
//!
//! The paper's recall (§4.1) needs the precise answer `A_P` per query; for
//! CoPhIR-scale data that is the dominant offline cost of running the
//! evaluation, so we parallelize across queries with `std::thread::scope`
//! (scoped threads are in std since 1.63, so no crossbeam dependency).

use simcloud_metric::{Metric, ObjectId, Vector};

/// Precise k-NN answers for a batch of queries.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// `answers[q]` = the k nearest `(id, distance)` of query `q`,
    /// ascending by distance.
    pub answers: Vec<Vec<(ObjectId, f64)>>,
    /// k used.
    pub k: usize,
}

impl GroundTruth {
    /// Recall (%) of an approximate answer for query `q` (paper §4.1).
    pub fn recall(&self, q: usize, approx: &[(ObjectId, f64)]) -> f64 {
        let precise = &self.answers[q];
        if precise.is_empty() {
            return 100.0;
        }
        let set: std::collections::HashSet<ObjectId> = precise.iter().map(|(id, _)| *id).collect();
        let hits = approx.iter().filter(|(id, _)| set.contains(id)).count();
        100.0 * hits as f64 / precise.len() as f64
    }

    /// Mean recall over all queries for per-query approximate answers.
    pub fn mean_recall(&self, approx: &[Vec<(ObjectId, f64)>]) -> f64 {
        assert_eq!(approx.len(), self.answers.len());
        let sum: f64 = approx
            .iter()
            .enumerate()
            .map(|(i, a)| self.recall(i, a))
            .sum();
        sum / self.answers.len() as f64
    }

    /// Distance to the k-th neighbor of query `q` (used to choose range
    /// radii in experiments).
    pub fn kth_distance(&self, q: usize) -> Option<f64> {
        self.answers[q].last().map(|(_, d)| *d)
    }
}

/// Computes exact k-NN for every query with brute force, parallelized over
/// queries across `threads` workers.
pub fn parallel_knn_ground_truth<M>(
    data: &[Vector],
    queries: &[Vector],
    metric: &M,
    k: usize,
    threads: usize,
) -> GroundTruth
where
    M: Metric<Vector> + Sync,
{
    assert!(threads >= 1);
    let mut answers: Vec<Vec<(ObjectId, f64)>> = vec![Vec::new(); queries.len()];
    let chunk = queries.len().div_ceil(threads).max(1);
    std::thread::scope(|s| {
        for (qchunk, achunk) in queries.chunks(chunk).zip(answers.chunks_mut(chunk)) {
            s.spawn(move || {
                for (q, slot) in qchunk.iter().zip(achunk.iter_mut()) {
                    *slot = knn_one(data, q, metric, k);
                }
            });
        }
    });
    GroundTruth { answers, k }
}

fn knn_one<M: Metric<Vector>>(
    data: &[Vector],
    q: &Vector,
    metric: &M,
    k: usize,
) -> Vec<(ObjectId, f64)> {
    // Max-heap of the best k (keep the largest on top for eviction).
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;
    struct Item(f64, u64);
    impl PartialEq for Item {
        fn eq(&self, o: &Self) -> bool {
            self.0 == o.0 && self.1 == o.1
        }
    }
    impl Eq for Item {}
    impl PartialOrd for Item {
        fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
            Some(self.cmp(o))
        }
    }
    impl Ord for Item {
        fn cmp(&self, o: &Self) -> Ordering {
            self.0
                .partial_cmp(&o.0)
                .unwrap_or(Ordering::Equal)
                .then(self.1.cmp(&o.1))
        }
    }
    let mut heap: BinaryHeap<Item> = BinaryHeap::with_capacity(k + 1);
    for (i, o) in data.iter().enumerate() {
        let d = metric.distance(q, o);
        if heap.len() < k {
            heap.push(Item(d, i as u64));
        } else if let Some(top) = heap.peek() {
            if d < top.0 || (d == top.0 && (i as u64) < top.1) {
                heap.pop();
                heap.push(Item(d, i as u64));
            }
        }
    }
    let mut out: Vec<(ObjectId, f64)> = heap
        .into_iter()
        .map(|Item(d, i)| (ObjectId(i), d))
        .collect();
    out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcloud_metric::L2;

    fn line(n: usize) -> Vec<Vector> {
        (0..n).map(|i| Vector::new(vec![i as f32])).collect()
    }

    #[test]
    fn ground_truth_on_a_line() {
        let data = line(100);
        let queries = vec![Vector::new(vec![10.2]), Vector::new(vec![95.0])];
        let gt = parallel_knn_ground_truth(&data, &queries, &L2, 3, 2);
        let ids: Vec<u64> = gt.answers[0].iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![10, 11, 9]);
        let ids: Vec<u64> = gt.answers[1].iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![95, 94, 96]);
    }

    #[test]
    fn thread_count_does_not_change_answers() {
        let data = line(200);
        let queries: Vec<Vector> = (0..10)
            .map(|i| Vector::new(vec![i as f32 * 17.3]))
            .collect();
        let a = parallel_knn_ground_truth(&data, &queries, &L2, 5, 1);
        let b = parallel_knn_ground_truth(&data, &queries, &L2, 5, 4);
        for (x, y) in a.answers.iter().zip(&b.answers) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn recall_computation() {
        let data = line(50);
        let queries = vec![Vector::new(vec![5.0])];
        let gt = parallel_knn_ground_truth(&data, &queries, &L2, 4, 1);
        // true: 5,4,6,3 — give an approx answer with 2 hits
        let approx = vec![
            (ObjectId(5), 0.0),
            (ObjectId(4), 1.0),
            (ObjectId(40), 35.0),
            (ObjectId(41), 36.0),
        ];
        assert!((gt.recall(0, &approx) - 50.0).abs() < 1e-9);
        assert!((gt.mean_recall(&[approx]) - 50.0).abs() < 1e-9);
        assert_eq!(gt.kth_distance(0), Some(2.0));
    }

    #[test]
    fn k_larger_than_data() {
        let data = line(3);
        let queries = vec![Vector::new(vec![0.0])];
        let gt = parallel_knn_ground_truth(&data, &queries, &L2, 10, 1);
        assert_eq!(gt.answers[0].len(), 3);
    }
}
