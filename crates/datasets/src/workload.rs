//! Query workloads.
//!
//! The paper evaluates on "one hundred query objects randomly chosen from
//! the data set" (§5.3) and, for the 1-NN comparison, excludes the queries
//! from the indexed set (§5.4). Both samplings are provided.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use simcloud_metric::Vector;

/// A query workload over a dataset.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    /// The query objects.
    pub queries: Vec<Vector>,
    /// Objects to index (equal to the full dataset for member queries;
    /// dataset minus queries for held-out workloads).
    pub indexed: Vec<Vector>,
}

impl QueryWorkload {
    /// Paper §5.3 style: queries are members of the indexed set.
    pub fn members(data: &[Vector], count: usize, seed: u64) -> Self {
        assert!(
            count <= data.len(),
            "cannot sample {count} from {}",
            data.len()
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..data.len()).collect();
        idx.shuffle(&mut rng);
        let queries = idx[..count].iter().map(|&i| data[i].clone()).collect();
        Self {
            queries,
            indexed: data.to_vec(),
        }
    }

    /// Paper §5.4 style: queries "were excluded from the indexed set".
    pub fn held_out(data: &[Vector], count: usize, seed: u64) -> Self {
        assert!(count < data.len(), "need data left over after holding out");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..data.len()).collect();
        idx.shuffle(&mut rng);
        let (q_idx, rest) = idx.split_at(count);
        let queries = q_idx.iter().map(|&i| data[i].clone()).collect();
        let mut rest: Vec<usize> = rest.to_vec();
        rest.sort_unstable(); // keep original order for the indexed part
        let indexed = rest.into_iter().map(|i| data[i].clone()).collect();
        Self { queries, indexed }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<Vector> {
        (0..n).map(|i| Vector::new(vec![i as f32])).collect()
    }

    #[test]
    fn members_keeps_everything_indexed() {
        let d = data(50);
        let w = QueryWorkload::members(&d, 10, 1);
        assert_eq!(w.len(), 10);
        assert_eq!(w.indexed.len(), 50);
        for q in &w.queries {
            assert!(w.indexed.contains(q), "member query must be indexed");
        }
    }

    #[test]
    fn held_out_excludes_queries() {
        let d = data(50);
        let w = QueryWorkload::held_out(&d, 10, 2);
        assert_eq!(w.len(), 10);
        assert_eq!(w.indexed.len(), 40);
        for q in &w.queries {
            assert!(!w.indexed.contains(q), "held-out query leaked into index");
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let d = data(30);
        let a = QueryWorkload::members(&d, 5, 9);
        let b = QueryWorkload::members(&d, 5, 9);
        assert_eq!(a.queries, b.queries);
        let c = QueryWorkload::members(&d, 5, 10);
        assert_ne!(a.queries, c.queries);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics() {
        let d = data(3);
        let _ = QueryWorkload::members(&d, 4, 0);
    }
}
