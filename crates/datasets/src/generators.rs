//! Deterministic dataset generators.
//!
//! All generators are Gaussian-mixture based. Cluster structure is what
//! makes metric indexing interesting: recall rises steeply with candidate
//! set size only if objects near a query share Voronoi cells, which is the
//! behaviour the paper's recall tables (5, 6, 9) exhibit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use simcloud_metric::{CombinedMetric, Vector};

use crate::{Dataset, DatasetMetric};

/// Parameters of a gene-expression-matrix-like generator.
#[derive(Debug, Clone, Copy)]
pub struct GeneExpressionSpec {
    /// Number of rows (genes) = records.
    pub records: usize,
    /// Number of columns (conditions) = dimensionality.
    pub dim: usize,
    /// Number of co-expression clusters.
    pub clusters: usize,
    /// Standard deviation of cluster centers around zero.
    pub center_sigma: f64,
    /// Within-cluster noise standard deviation.
    pub noise_sigma: f64,
    /// Fraction of unclustered background genes.
    pub background: f64,
}

/// Samples a standard normal via Box–Muller (avoids needing rand_distr).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generates a gene-expression-like matrix per `spec`.
pub fn gene_expression(spec: GeneExpressionSpec, seed: u64) -> Vec<Vector> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Cluster centers: smooth profiles across conditions.
    let centers: Vec<Vec<f64>> = (0..spec.clusters)
        .map(|_| {
            (0..spec.dim)
                .map(|_| normal(&mut rng) * spec.center_sigma)
                .collect()
        })
        .collect();
    let mut out = Vec::with_capacity(spec.records);
    for _ in 0..spec.records {
        let is_background = rng.gen_range(0.0..1.0) < spec.background;
        let v: Vec<f32> = if is_background {
            (0..spec.dim)
                .map(|_| (normal(&mut rng) * spec.center_sigma * 1.2) as f32)
                .collect()
        } else {
            let c = &centers[rng.gen_range(0..spec.clusters)];
            c.iter()
                .map(|&mu| (mu + normal(&mut rng) * spec.noise_sigma) as f32)
                .collect()
        };
        out.push(Vector::new(v));
    }
    out
}

/// YEAST stand-in: 2,882 × 17 expression levels, L1 metric (Table 1).
///
/// `records` overrides the cardinality (for quick tests); `None` = paper
/// size.
pub fn yeast_like(seed: u64, records: Option<usize>) -> Dataset {
    let spec = GeneExpressionSpec {
        records: records.unwrap_or(2882),
        dim: 17,
        clusters: 12,
        center_sigma: 2.0,
        noise_sigma: 0.8,
        background: 0.15,
    };
    Dataset {
        name: "YEAST".into(),
        vectors: gene_expression(spec, seed),
        metric: DatasetMetric::L1,
    }
}

/// HUMAN stand-in: 4,026 × 96 expression levels (lymphoma profiling data in
/// the paper), L1 metric.
pub fn human_like(seed: u64, records: Option<usize>) -> Dataset {
    let spec = GeneExpressionSpec {
        records: records.unwrap_or(4026),
        dim: 96,
        clusters: 16,
        center_sigma: 2.0,
        noise_sigma: 0.9,
        background: 0.1,
    };
    Dataset {
        name: "HUMAN".into(),
        vectors: gene_expression(spec, seed),
        metric: DatasetMetric::L1,
    }
}

/// CoPhIR stand-in: `records` × 282 MPEG-7-like descriptors searched by a
/// weighted combination of per-block Lp metrics (paper: five descriptors,
/// "the distance combines them").
///
/// Blocks follow [`CombinedMetric::cophir_default`]: ScalableColor(64),
/// ColorStructure(64), ColorLayout(12), EdgeHistogram(80),
/// HomogeneousTexture(62). Values are quantized to integer grids like real
/// MPEG-7 descriptors. The paper uses 1M records; benches default lower for
/// runtime, the scalability example uses the full size.
pub fn cophir_like(seed: u64, records: usize) -> Dataset {
    let metric = CombinedMetric::cophir_default();
    let dim = metric.dim();
    let mut rng = StdRng::seed_from_u64(seed);
    let clusters = 64.min(records.max(1));
    // Cluster centers in descriptor space, quantized 0..=63 per component.
    let centers: Vec<Vec<f64>> = (0..clusters)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.0..64.0)).collect())
        .collect();
    let mut vectors = Vec::with_capacity(records);
    for _ in 0..records {
        let c = &centers[rng.gen_range(0..clusters)];
        let v: Vec<f32> = c
            .iter()
            .map(|&mu| {
                let x = mu + normal(&mut rng) * 6.0;
                // Quantize to the integer grid and clamp to descriptor range.
                x.round().clamp(0.0, 255.0) as f32
            })
            .collect();
        vectors.push(Vector::new(v));
    }
    Dataset {
        name: "CoPhIR".into(),
        vectors,
        metric: DatasetMetric::Combined(metric),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcloud_metric::analysis::DistanceHistogram;

    #[test]
    fn yeast_shape_matches_table1() {
        let ds = yeast_like(1, None);
        assert_eq!(ds.len(), 2882);
        assert_eq!(ds.dim(), 17);
        assert!(matches!(ds.metric, DatasetMetric::L1));
    }

    #[test]
    fn human_shape_matches_table1() {
        let ds = human_like(1, Some(500));
        assert_eq!(ds.len(), 500);
        assert_eq!(ds.dim(), 96);
    }

    #[test]
    fn cophir_shape_and_quantization() {
        let ds = cophir_like(1, 300);
        assert_eq!(ds.len(), 300);
        assert_eq!(ds.dim(), 282);
        for v in &ds.vectors[..10] {
            for &x in v.as_slice() {
                assert!((0.0..=255.0).contains(&x));
                assert_eq!(x.fract(), 0.0, "descriptor values are integers");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = yeast_like(42, Some(100));
        let b = yeast_like(42, Some(100));
        assert_eq!(a.vectors, b.vectors);
        let c = yeast_like(43, Some(100));
        assert_ne!(a.vectors, c.vectors);
    }

    #[test]
    fn data_is_clustered_not_uniform() {
        // Clustered data has a multi-modal distance distribution whose
        // variance (relative to mean) exceeds a uniform cloud's — intrinsic
        // dimensionality must come out far below the embedding dimension.
        let ds = human_like(3, Some(600));
        let h = DistanceHistogram::sample(&ds.vectors, &ds.metric.as_metric(), 2000, 32, 7);
        let idim = h.stats().intrinsic_dim;
        assert!(
            idim < 30.0,
            "intrinsic dim {idim} suggests no cluster structure (embedding dim 96)"
        );
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let xs: Vec<f64> = (0..20000).map(|_| normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
