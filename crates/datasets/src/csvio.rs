//! CSV import/export for datasets.
//!
//! Users reproducing against the *real* YEAST/HUMAN matrices (the paper's
//! download links) can export them to plain CSV (one row per record,
//! comma-separated floats) and load them here in place of the synthetic
//! stand-ins.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use simcloud_metric::Vector;

/// CSV errors.
#[derive(Debug)]
pub enum CsvError {
    /// I/O failure.
    Io(std::io::Error),
    /// Unparseable value at (line, column).
    Parse(usize, usize),
    /// Rows have inconsistent dimensionality.
    RaggedRows {
        /// Line number (1-based) of the offending row.
        line: usize,
        /// Expected dimensionality (from the first row).
        expected: usize,
        /// Found dimensionality.
        got: usize,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv I/O: {e}"),
            CsvError::Parse(l, c) => write!(f, "csv parse error at line {l}, column {c}"),
            CsvError::RaggedRows {
                line,
                expected,
                got,
            } => {
                write!(f, "row {line} has {got} values, expected {expected}")
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes vectors as CSV.
pub fn save_csv<P: AsRef<Path>>(path: P, vectors: &[Vector]) -> Result<(), CsvError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    for v in vectors {
        let mut first = true;
        for &x in v.as_slice() {
            if !first {
                w.write_all(b",")?;
            }
            write!(w, "{x}")?;
            first = false;
        }
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

/// Loads vectors from CSV (blank lines skipped; all rows must share one
/// dimensionality).
pub fn load_csv<P: AsRef<Path>>(path: P) -> Result<Vec<Vector>, CsvError> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    let mut out = Vec::new();
    let mut dim: Option<usize> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut row = Vec::new();
        for (col, tok) in trimmed.split(',').enumerate() {
            let x: f32 = tok
                .trim()
                .parse()
                .map_err(|_| CsvError::Parse(lineno + 1, col + 1))?;
            row.push(x);
        }
        if let Some(d) = dim {
            if row.len() != d {
                return Err(CsvError::RaggedRows {
                    line: lineno + 1,
                    expected: d,
                    got: row.len(),
                });
            }
        } else {
            dim = Some(row.len());
        }
        out.push(Vector::new(row));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("simcloud-csv-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.csv", std::process::id()))
    }

    #[test]
    fn round_trip() {
        let vs = vec![
            Vector::new(vec![1.5, -2.0, 3.25]),
            Vector::new(vec![0.0, 0.5, -9.75]),
        ];
        let p = tmp("roundtrip");
        save_csv(&p, &vs).unwrap();
        let back = load_csv(&p).unwrap();
        assert_eq!(back, vs);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn blank_lines_skipped() {
        let p = tmp("blank");
        std::fs::write(&p, "1,2\n\n3,4\n").unwrap();
        let vs = load_csv(&p).unwrap();
        assert_eq!(vs.len(), 2);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn parse_error_reports_position() {
        let p = tmp("parse");
        std::fs::write(&p, "1,2\n3,oops\n").unwrap();
        match load_csv(&p) {
            Err(CsvError::Parse(2, 2)) => {}
            other => panic!("expected Parse(2,2), got {other:?}"),
        }
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn ragged_rows_rejected() {
        let p = tmp("ragged");
        std::fs::write(&p, "1,2,3\n4,5\n").unwrap();
        match load_csv(&p) {
            Err(CsvError::RaggedRows {
                line: 2,
                expected: 3,
                got: 2,
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn empty_file_loads_empty() {
        let p = tmp("empty");
        std::fs::write(&p, "").unwrap();
        assert!(load_csv(&p).unwrap().is_empty());
        std::fs::remove_file(p).unwrap();
    }
}
