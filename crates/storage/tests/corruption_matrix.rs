//! Corruption matrix: byte-level damage to every on-disk artefact — page
//! images, the WAL, the meta document — must end in clean recovery or a
//! typed [`StorageError::Corrupt`], never a panic and never silently
//! wrong data.
//!
//! The matrix is driven through [`FaultEnv::from_images`]: a store is
//! built in a fault environment, its surviving byte images are harvested,
//! mutated raw, and handed to `DiskStore::open_in`.

use simcloud_storage::{
    BucketId, BucketStore, CrashMode, DiskStore, DiskStoreOptions, FaultEnv, FaultPlan, Record,
    SurvivingImage,
};

const PAGE_SIZE: usize = 4096;
/// Records the workload writes (3 buckets × 8 records).
const WORKLOAD_RECORDS: u64 = 24;

fn rec(id: u64, len: usize) -> Record {
    Record::new(
        id,
        (0..len).map(|i| ((id as usize + i) % 256) as u8).collect(),
    )
}

fn workload(store: &mut DiskStore) -> Result<(), simcloud_storage::StorageError> {
    for i in 0..WORKLOAD_RECORDS {
        store.append(BucketId(i % 3), rec(i, 400 + (i as usize % 300)))?;
    }
    store.flush()
}

/// A cleanly committed store's byte images (WAL empty, meta clean).
fn committed_image() -> SurvivingImage {
    let env = FaultEnv::new(FaultPlan::default());
    let handle = env.handle();
    let mut s = DiskStore::create_in(Box::new(env), DiskStoreOptions::default()).expect("create");
    workload(&mut s).expect("workload");
    drop(s);
    let img = handle.surviving();
    assert!(img.wal.is_empty(), "committed image must have empty WAL");
    assert!(img.pages.len() > 2 * PAGE_SIZE, "multi-page store expected");
    img
}

/// Byte images from a crash that leaves WAL frames behind: the latest
/// crash point (searched backwards) whose surviving WAL is non-empty —
/// i.e. mid-checkpoint, after the commit record hit the log.
fn image_with_wal() -> SurvivingImage {
    let env = FaultEnv::new(FaultPlan::default());
    let handle = env.handle();
    let mut s = DiskStore::create_in(Box::new(env), DiskStoreOptions::default()).expect("create");
    workload(&mut s).expect("workload");
    drop(s);
    let total = handle.ops();

    for crash_at in (0..total).rev() {
        let plan = FaultPlan {
            crash_at: Some(crash_at),
            mode: CrashMode::KeepUnsynced,
            flip: None,
        };
        let env = FaultEnv::new(plan);
        let handle = env.handle();
        if let Ok(mut s) = DiskStore::create_in(Box::new(env), DiskStoreOptions::default()) {
            let _ = workload(&mut s);
        }
        let img = handle.surviving();
        if !img.wal.is_empty() {
            return img;
        }
    }
    panic!("no crash point leaves WAL bytes behind");
}

fn reopen(image: SurvivingImage) -> Result<DiskStore, simcloud_storage::StorageError> {
    DiskStore::open_in(
        Box::new(FaultEnv::from_images(image, FaultPlan::default())),
        DiskStoreOptions::default(),
    )
}

/// Reads everything readable; panics propagate, errors don't.
fn exercise(store: &DiskStore) {
    let _ = store.verify();
    let mut ids = store.bucket_ids();
    ids.sort();
    for b in ids {
        let _ = store.read_bucket(b);
        let _ = store.read_matching(b, &|id| id % 2 == 0);
    }
}

/// Flipping any byte of any committed page (past the stamp) trips the
/// page CRC: `verify` reports corruption, reads never panic.
#[test]
fn bit_flip_in_every_committed_page_is_detected() {
    let base = committed_image();
    let pages = base.pages.len() / PAGE_SIZE;
    assert!(pages >= 3);
    for page in 1..pages {
        for off in [0usize, 4, 9, 13, 31, 32, 2048, PAGE_SIZE - 1] {
            let mut img = base.clone();
            img.pages[page * PAGE_SIZE + off] ^= 0x20;
            match reopen(img) {
                Ok(s) => {
                    assert!(
                        s.verify().is_err(),
                        "flip in page {page} at offset {off} must fail verify"
                    );
                    exercise(&s);
                }
                Err(e) => assert!(!e.to_string().is_empty()),
            }
        }
    }
}

/// The stamp page's magic is load-bearing: damage there is rejected at
/// open with a typed error.
#[test]
fn stamp_magic_damage_rejected_at_open() {
    let base = committed_image();
    for off in 0..8usize {
        let mut img = base.clone();
        img.pages[off] ^= 0xff;
        let err = reopen(img).expect_err("damaged stamp magic must not open");
        assert!(!err.to_string().is_empty());
    }
}

/// Any single-byte damage to the 48-byte meta document fails its CRC and
/// is rejected with a typed error; a missing meta likewise.
#[test]
fn meta_corruption_is_typed() {
    let base = committed_image();
    let meta = base.meta.clone().expect("committed image has meta");
    for off in 0..meta.len() {
        let mut img = base.clone();
        if let Some(m) = img.meta.as_mut() {
            m[off] ^= 0x01;
        }
        let err = reopen(img).expect_err("corrupt meta must not open");
        assert!(!err.to_string().is_empty(), "offset {off}");
    }
    // Truncated meta.
    let mut img = base.clone();
    img.meta = Some(meta[..meta.len() - 1].to_vec());
    assert!(reopen(img).is_err());
    // Missing meta entirely (pre-v2 or wiped file).
    let mut img = base.clone();
    img.meta = None;
    assert!(reopen(img).is_err());
}

/// Truncating the page file and/or the WAL at arbitrary unaligned
/// boundaries: reopen either recovers or reports Corrupt — no panics,
/// and a store that opens is internally consistent about what it serves.
#[test]
fn unaligned_truncation_of_pages_and_wal() {
    let base = image_with_wal();
    let plen = base.pages.len();
    let wlen = base.wal.len();
    assert!(wlen > 0);

    let page_cuts = [
        0usize,
        1,
        7,
        PAGE_SIZE - 1,
        PAGE_SIZE,
        PAGE_SIZE + 9,
        plen / 2,
        plen - 1,
    ];
    let wal_cuts = [0usize, 1, 7, 19, 20, 67, wlen / 2, wlen.saturating_sub(1)];
    for pc in page_cuts {
        for wc in wal_cuts {
            let mut img = base.clone();
            img.pages.truncate(pc);
            img.wal.truncate(wc);
            match reopen(img) {
                Ok(s) => exercise(&s),
                Err(e) => assert!(!e.to_string().is_empty(), "pages@{pc} wal@{wc}"),
            }
        }
    }
}

/// A duplicated WAL (the whole log appended to itself) replays cleanly:
/// the LSN monotonicity gate stops the scan at the stale second copy and
/// the first copy's commit is recovered in full.
#[test]
fn duplicated_wal_frames_recover_cleanly() {
    let base = image_with_wal();
    let mut img = base.clone();
    let copy = img.wal.clone();
    img.wal.extend_from_slice(&copy);
    let s = reopen(img).expect("duplicated WAL must still open");
    assert!(s.recovered_on_open());
    s.verify().expect("recovered store verifies");
    assert_eq!(s.total_records(), WORKLOAD_RECORDS);
}

/// Reordered / byte-rotated WAL content: recovery salvages a consistent
/// prefix or rejects with Corrupt — never panics, and whatever opens
/// passes or fails verification in a typed way.
#[test]
fn reordered_and_mangled_wal_never_panics() {
    let base = image_with_wal();

    // Rotate the WAL bytes by several unaligned amounts (destroys frame
    // alignment and ordering in one stroke).
    for rot in [1usize, 19, 68, 4116, base.wal.len() / 2] {
        let mut img = base.clone();
        let n = img.wal.len();
        img.wal.rotate_left(rot % n.max(1));
        match reopen(img) {
            Ok(s) => exercise(&s),
            Err(e) => assert!(!e.to_string().is_empty(), "rot {rot}"),
        }
    }

    // Swap the first two 4116-byte page frames if present (LSN order
    // inversion): the scan must stop at the inversion and recover only
    // the monotonic prefix.
    const FRAME: usize = 20 + PAGE_SIZE;
    if base.wal.len() >= 2 * FRAME {
        let mut img = base.clone();
        let (a, rest) = img.wal.split_at(FRAME);
        let (b, tail) = rest.split_at(FRAME);
        let mut swapped = Vec::with_capacity(img.wal.len());
        swapped.extend_from_slice(b);
        swapped.extend_from_slice(a);
        swapped.extend_from_slice(tail);
        img.wal = swapped;
        match reopen(img) {
            Ok(s) => exercise(&s),
            Err(e) => assert!(!e.to_string().is_empty()),
        }
    }
}

/// Garbage appended to an otherwise clean store's (empty) WAL triggers
/// recovery, which ignores the garbage and serves the committed data.
#[test]
fn trailing_wal_garbage_is_ignored() {
    let mut img = committed_image();
    img.wal
        .extend_from_slice(b"this is not a frame header at all......");
    let s = reopen(img).expect("garbage-tail WAL must open");
    assert!(s.recovered_on_open());
    s.verify().expect("verifies clean");
    assert_eq!(s.total_records(), WORKLOAD_RECORDS);
}
