//! Model-based property test of the paged disk store: an arbitrary
//! sequence of appends/reads/deletes/flush/reopen must behave exactly like
//! a hash-map model, under an adversarially small buffer pool.

use std::collections::HashMap;

use proptest::prelude::*;
use simcloud_storage::{BucketId, BucketStore, DiskStore, Record};

#[derive(Debug, Clone)]
enum Op {
    Append { bucket: u8, len: u16 },
    Read { bucket: u8 },
    Delete { bucket: u8 },
    Flush,
    Reopen,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), 0u16..2200).prop_map(|(bucket, len)| Op::Append { bucket: bucket % 6, len }),
        3 => any::<u8>().prop_map(|bucket| Op::Read { bucket: bucket % 6 }),
        1 => any::<u8>().prop_map(|bucket| Op::Delete { bucket: bucket % 6 }),
        1 => Just(Op::Flush),
        1 => Just(Op::Reopen),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn disk_store_matches_model(ops in proptest::collection::vec(arb_op(), 1..60), pool in 2usize..8) {
        let path = std::env::temp_dir().join(format!(
            "simcloud-model-{}-{}.db",
            std::process::id(),
            rand_suffix(&ops)
        ));
        let mut store = DiskStore::create_with_pool(&path, pool).unwrap();
        let mut model: HashMap<BucketId, Vec<Record>> = HashMap::new();
        let mut next_id = 0u64;

        for op in &ops {
            match op {
                Op::Append { bucket, len } => {
                    let b = BucketId(*bucket as u64);
                    let rec = Record::new(
                        next_id,
                        (0..*len).map(|i| ((next_id as usize + i as usize) % 256) as u8).collect(),
                    );
                    next_id += 1;
                    store.append(b, rec.clone()).unwrap();
                    model.entry(b).or_default().push(rec);
                }
                Op::Read { bucket } => {
                    let b = BucketId(*bucket as u64);
                    match model.get(&b) {
                        Some(expected) => {
                            let got = store.read_bucket(b).unwrap();
                            prop_assert_eq!(&got, expected);
                        }
                        None => prop_assert!(store.read_bucket(b).is_err()),
                    }
                }
                Op::Delete { bucket } => {
                    let b = BucketId(*bucket as u64);
                    store.delete_bucket(b).unwrap();
                    model.remove(&b);
                }
                Op::Flush => store.flush().unwrap(),
                Op::Reopen => {
                    store.flush().unwrap();
                    drop(store);
                    store = DiskStore::open_with_pool(&path, pool).unwrap();
                }
            }
            prop_assert_eq!(
                store.total_records(),
                model.values().map(|v| v.len() as u64).sum::<u64>()
            );
        }
        // Final full check.
        for (b, expected) in &model {
            let got = store.read_bucket(*b).unwrap();
            prop_assert_eq!(&got, expected);
        }
        drop(store);
        simcloud_storage::FileEnv::remove_sidecars(&path);
        let _ = std::fs::remove_file(path);
    }
}

/// Injected corruption: a store file truncated or bit-flipped on disk must
/// surface as `Err(StorageError)` on reopen or read — never a panic. This
/// pins the policy behind the `read_*_at` helpers in `disk.rs`.
#[test]
fn corrupted_file_errors_instead_of_panicking() {
    let path = std::env::temp_dir().join(format!("simcloud-corrupt-{}.db", std::process::id(),));
    // Build a store with a few pages of real data, flushed to disk.
    {
        let mut store = DiskStore::create_with_pool(&path, 4).unwrap();
        for i in 0..40u64 {
            let body: Vec<u8> = (0..200u16)
                .map(|j| ((i + u64::from(j)) % 256) as u8)
                .collect();
            store.append(BucketId(i % 3), Record::new(i, body)).unwrap();
        }
        store.flush().unwrap();
    }
    let full = std::fs::read(&path).unwrap();
    assert!(full.len() > 4096, "expect multiple pages on disk");

    // Truncation at every page-ish boundary plus a few odd offsets: the
    // header parse or directory/chain walk must return an error.
    for keep in [0usize, 7, 24, 4095, 4096, 4097, full.len() / 2] {
        std::fs::write(&path, &full[..keep.min(full.len())]).unwrap();
        match DiskStore::open_with_pool(&path, 4) {
            Err(_) => {}
            Ok(reopened) => {
                // A truncated tail can leave the header intact; the damage
                // must then surface as Err on bucket reads, not a panic.
                for b in 0..3u64 {
                    let _ = reopened.read_bucket(BucketId(b));
                }
            }
        }
    }

    // Bit-flip the page-count / directory-head header fields.
    for off in [12usize, 20] {
        let mut bytes = full.clone();
        bytes[off] ^= 0xff;
        bytes[off + 1] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        if let Ok(reopened) = DiskStore::open_with_pool(&path, 4) {
            for b in 0..3u64 {
                let _ = reopened.read_bucket(BucketId(b));
            }
        }
    }
    simcloud_storage::FileEnv::remove_sidecars(&path);
    let _ = std::fs::remove_file(&path);
}

/// Cheap deterministic suffix so parallel proptest cases do not collide on
/// one file.
fn rand_suffix(ops: &[Op]) -> u64 {
    let mut h = 1469598103934665603u64;
    for op in ops {
        let tag = match op {
            Op::Append { bucket, len } => 1u64 ^ ((*bucket as u64) << 8) ^ ((*len as u64) << 16),
            Op::Read { bucket } => 2u64 ^ ((*bucket as u64) << 8),
            Op::Delete { bucket } => 3u64 ^ ((*bucket as u64) << 8),
            Op::Flush => 4,
            Op::Reopen => 5,
        };
        h = (h ^ tag).wrapping_mul(1099511628211);
    }
    h
}
