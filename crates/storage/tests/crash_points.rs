//! Exhaustive crash-point sweep over the disk store's write path.
//!
//! A fixed schedule of appends / deletes / flushes is first run against a
//! fault-free [`FaultEnv`] to (a) count every mutating backend operation
//! the schedule performs and (b) record the store contents at each flush
//! (the only durability points the engine promises). Then, for **every**
//! crash point `0..ops` and every [`CrashMode`], the same schedule is
//! replayed, crashed, and the surviving byte images are reopened: the
//! recovered store must verify CRC-clean and equal one of the recorded
//! flush-consistent snapshots — with zero panics anywhere.

use std::collections::BTreeMap;

use simcloud_storage::{
    BucketId, BucketStore, CrashMode, DiskStore, DiskStoreOptions, FaultEnv, FaultPlan, Record,
};

/// Deterministic record: id-seeded bytes, length varied so bucket chains
/// span multiple pages and some appends land mid-page.
fn rec(id: u64, len: usize) -> Record {
    Record::new(
        id,
        (0..len).map(|i| ((id as usize + i) % 256) as u8).collect(),
    )
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Append { bucket: u64, id: u64, len: usize },
    Delete { bucket: u64 },
    Flush,
}

/// The recorded schedule: enough volume to allocate pages, grow chains
/// past one page, free and reuse pages, and commit several times.
fn schedule() -> Vec<Op> {
    let mut ops = Vec::new();
    let mut id = 0u64;
    for round in 0u64..3 {
        for k in 0..12u64 {
            ops.push(Op::Append {
                bucket: k % 4,
                id,
                len: 200 + ((id as usize * 97) % 1500),
            });
            id += 1;
        }
        // Free a chain so the next round exercises free-list reuse.
        ops.push(Op::Delete { bucket: round % 4 });
        ops.push(Op::Flush);
    }
    ops
}

type Model = BTreeMap<u64, Vec<Record>>;

/// Applies one op to the in-memory model mirror.
fn apply_model(model: &mut Model, op: Op) {
    match op {
        Op::Append { bucket, id, len } => model.entry(bucket).or_default().push(rec(id, len)),
        Op::Delete { bucket } => {
            model.remove(&bucket);
        }
        Op::Flush => {}
    }
}

/// Runs the schedule against `store`, stopping (without panicking) at the
/// first injected-crash error. Returns how many flushes fully succeeded.
fn run_schedule(store: &mut DiskStore, ops: &[Op]) -> usize {
    let mut flushes = 0;
    for op in ops {
        let res = match *op {
            Op::Append { bucket, id, len } => store.append(BucketId(bucket), rec(id, len)),
            Op::Delete { bucket } => store.delete_bucket(BucketId(bucket)),
            Op::Flush => store.flush().map(|()| flushes += 1),
        };
        if res.is_err() {
            break;
        }
    }
    flushes
}

/// The store contents as a comparable model (bucket → records).
fn snapshot(store: &DiskStore) -> Model {
    let mut out = Model::new();
    let mut ids = store.bucket_ids();
    ids.sort();
    for b in ids {
        out.insert(b.0, store.read_bucket(b).expect("bucket readable"));
    }
    out
}

#[test]
fn every_crash_point_recovers_a_flush_consistent_prefix() {
    let ops = schedule();

    // Reference run: no faults. Record the model at creation and after
    // each flush — the set of states a crash may legally roll back to.
    let env = FaultEnv::new(FaultPlan::default());
    let handle = env.handle();
    let mut store = DiskStore::create_in(Box::new(env), DiskStoreOptions::default())
        .expect("fault-free create");
    let mut model = Model::new();
    let mut committed: Vec<Model> = vec![Model::new()];
    for op in &ops {
        match *op {
            Op::Append { bucket, id, len } => store
                .append(BucketId(bucket), rec(id, len))
                .expect("append"),
            Op::Delete { bucket } => store.delete_bucket(BucketId(bucket)).expect("delete"),
            Op::Flush => store.flush().expect("flush"),
        }
        apply_model(&mut model, *op);
        if matches!(op, Op::Flush) {
            committed.push(model.clone());
        }
    }
    assert_eq!(snapshot(&store), model, "fault-free run matches model");
    drop(store);
    let total_ops = handle.ops();
    assert!(
        total_ops > 30,
        "schedule must exercise a meaningful number of backend ops, got {total_ops}"
    );

    // Crash sweep: every backend mutation × every crash mode.
    for crash_at in 0..total_ops {
        for mode in [
            CrashMode::DropUnsynced,
            CrashMode::KeepUnsynced,
            CrashMode::TornWrite,
        ] {
            let plan = FaultPlan {
                crash_at: Some(crash_at),
                mode,
                flip: None,
            };
            let env = FaultEnv::new(plan);
            let handle = env.handle();
            let store = DiskStore::create_in(Box::new(env), DiskStoreOptions::default());
            let reached_flushes = match store {
                Ok(mut s) => {
                    let f = run_schedule(&mut s, &ops);
                    drop(s);
                    f
                }
                // The crash can land inside create() itself.
                Err(_) => 0,
            };
            assert!(handle.crashed(), "crash point {crash_at} must fire");

            let image = handle.surviving();
            let reopened = DiskStore::open_in(
                Box::new(FaultEnv::from_images(image, FaultPlan::default())),
                DiskStoreOptions::default(),
            );
            let ctx = format!("crash_at={crash_at} mode={mode:?}");
            match reopened {
                Ok(s) => {
                    s.verify()
                        .unwrap_or_else(|e| panic!("{ctx}: recovered store failed verify: {e}"));
                    let got = snapshot(&s);
                    let idx = committed.iter().position(|c| *c == got).unwrap_or_else(|| {
                        panic!(
                            "{ctx}: recovered state is not any flush-consistent \
                                 snapshot ({} buckets, {} records)",
                            got.len(),
                            got.values().map(Vec::len).sum::<usize>()
                        )
                    });
                    // Durability floor: every flush that returned Ok must
                    // survive. Ceiling: at most the one in-flight flush
                    // that crashed after its WAL commit point may appear
                    // on top of the acknowledged ones.
                    assert!(
                        idx >= reached_flushes,
                        "{ctx}: acknowledged flush lost (recovered snapshot \
                         {idx}, acknowledged {reached_flushes})"
                    );
                    assert!(
                        idx <= reached_flushes + 1,
                        "{ctx}: recovered snapshot {idx} is from beyond the \
                         in-flight flush (acknowledged {reached_flushes})"
                    );
                }
                // A store created-but-never-flushed may legitimately be
                // unopenable only if nothing was ever committed; after the
                // first successful flush, reopen must succeed.
                Err(e) => {
                    assert_eq!(
                        reached_flushes, 0,
                        "{ctx}: reopen failed after an acknowledged flush: {e}"
                    );
                }
            }
        }
    }
}

/// A silent bit flip on any page-file write is caught by the page CRC on
/// reopen — surfacing as a typed error or a repaired page, never a panic
/// and never silently wrong data.
#[test]
fn bit_flips_on_checkpoint_writes_are_detected() {
    let ops = schedule();
    // Count ops of the clean run first.
    let env = FaultEnv::new(FaultPlan::default());
    let handle = env.handle();
    let mut store =
        DiskStore::create_in(Box::new(env), DiskStoreOptions::default()).expect("create");
    let _ = run_schedule(&mut store, &ops);
    let reference = snapshot(&store);
    drop(store);
    let total_ops = handle.ops();

    for flip_op in 0..total_ops {
        let plan = FaultPlan {
            crash_at: None,
            mode: CrashMode::DropUnsynced,
            flip: Some(simcloud_storage::BitFlip {
                op_index: flip_op,
                byte: 13,
                mask: 0x40,
            }),
        };
        let env = FaultEnv::new(plan);
        let handle = env.handle();
        let store = DiskStore::create_in(Box::new(env), DiskStoreOptions::default());
        if let Ok(mut s) = store {
            let _ = run_schedule(&mut s, &ops);
            drop(s);
        }
        let image = handle.surviving();
        let reopened = DiskStore::open_in(
            Box::new(FaultEnv::from_images(image, FaultPlan::default())),
            DiskStoreOptions::default(),
        );
        if let Ok(s) = reopened {
            // If the flip hit a WAL frame the recovery gate drops the bad
            // frame; if it hit a checkpoint write the WAL replay repairs
            // it. Either way a store that opens must be consistent or
            // fail verification in a typed way.
            match s.verify() {
                Ok(()) => {
                    let mut ids = s.bucket_ids();
                    ids.sort();
                    for b in ids {
                        let _ = s.read_bucket(b);
                    }
                }
                Err(e) => {
                    let msg = e.to_string();
                    assert!(!msg.is_empty(), "typed error must carry a message");
                }
            }
        }
    }
    // Sanity: the fault-free reference itself holds the schedule's data.
    assert!(!reference.is_empty());
}
