//! # simcloud-storage — bucket storage backing the M-Index
//!
//! The M-Index stores data objects in *buckets* attached to the leaves of
//! its Voronoi cell tree. The paper's evaluation runs YEAST/HUMAN on
//! "Memory storage" and CoPhIR on "Disk storage" (Table 2); this crate
//! provides both behind one trait:
//!
//! * [`MemoryStore`] — buckets as in-memory vectors (fast, volatile);
//! * [`DiskStore`] — a single-file paged store (4 KiB pages, per-bucket page
//!   chains, free-list reuse, LRU buffer pool) with I/O statistics.
//!
//! Records are opaque `(u64 id, bytes)` pairs: the index layer stores its
//! routing information (pivot permutation or distances) and the sealed
//! object payload inside the byte blob, so the storage layer never sees
//! plaintext structure — consistent with the paper's layering where storage
//! is the least trusted component.

#![warn(missing_docs)]

pub mod backend;
pub mod disk;
pub mod memory;
pub mod meta;
pub mod pagefmt;
pub mod record;
pub mod telemetry;
pub mod wal;

pub use backend::{
    Backend, BitFlip, CrashMode, FaultEnv, FaultHandle, FaultPlan, FileEnv, StorageEnv,
    SurvivingImage,
};
pub use disk::{DiskStore, DiskStoreOptions};
pub use memory::MemoryStore;
pub use record::Record;
pub use telemetry::StorageTiming;

/// Identifier of a bucket (an M-Index leaf owns exactly one bucket).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct BucketId(pub u64);

impl std::fmt::Display for BucketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Storage-level errors.
#[derive(Debug)]
pub enum StorageError {
    /// Bucket does not exist.
    UnknownBucket(BucketId),
    /// Underlying I/O failure (disk store only).
    Io(std::io::Error),
    /// File content is not a valid store (bad magic/version) or is corrupt.
    Corrupt(String),
    /// A record exceeds the maximum encodable size.
    RecordTooLarge(usize),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::UnknownBucket(b) => write!(f, "unknown bucket {b}"),
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt(s) => write!(f, "corrupt store: {s}"),
            StorageError::RecordTooLarge(n) => write!(f, "record of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Cumulative I/O statistics of a store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages read from the backing file (buffer-pool misses).
    pub page_reads: u64,
    /// Pages written to the backing file.
    pub page_writes: u64,
    /// Buffer-pool hits (page served from memory).
    pub pool_hits: u64,
    /// Records appended.
    pub records_appended: u64,
    /// Records read back.
    pub records_read: u64,
    /// Write-ahead-log frames appended (disk store with WAL enabled).
    pub wal_appends: u64,
    /// Page images replayed from the WAL during `open()` recovery.
    pub pages_recovered: u64,
    /// Checksum verification failures observed (each surfaced as a typed
    /// [`StorageError::Corrupt`], never silent).
    pub crc_failures: u64,
}

impl IoStats {
    /// Folds another store's counters in — the aggregation a sharded
    /// deployment needs, where each shard owns an independent store and
    /// the reported I/O cost must be the **sum** of per-shard page reads
    /// and record reads, not the last shard's numbers.
    pub fn merge_from(&mut self, shard: &IoStats) {
        self.page_reads += shard.page_reads;
        self.page_writes += shard.page_writes;
        self.pool_hits += shard.pool_hits;
        self.records_appended += shard.records_appended;
        self.records_read += shard.records_read;
        self.wal_appends += shard.wal_appends;
        self.pages_recovered += shard.pages_recovered;
        self.crc_failures += shard.crc_failures;
    }
}

/// Abstract bucket storage; the M-Index is generic over this.
///
/// The access pattern the index needs is deliberately narrow: append a
/// record, stream a whole bucket (search reads entire candidate cells),
/// and drop a bucket (splits re-distribute its records).
///
/// Reads take `&self` so many queries can stream buckets concurrently
/// while writes keep exclusive access; implementations use interior
/// mutability where the backing medium needs it (read statistics, the
/// disk store's buffer pool).
pub trait BucketStore: Send + Sync {
    /// Appends a record to `bucket`, creating the bucket if new.
    fn append(&mut self, bucket: BucketId, record: Record) -> Result<(), StorageError>;

    /// Reads every record in `bucket` (order = insertion order).
    fn read_bucket(&self, bucket: BucketId) -> Result<Vec<Record>, StorageError>;

    /// Reads only the records of `bucket` whose id satisfies `wanted`
    /// (order = insertion order) — the point-lookup path of the two-phase
    /// candidate fetch, which pulls a few records out of large buckets.
    /// The default filters a full [`BucketStore::read_bucket`];
    /// memory-backed implementations override it to avoid materializing
    /// the records the caller discards.
    fn read_matching(
        &self,
        bucket: BucketId,
        wanted: &dyn Fn(u64) -> bool,
    ) -> Result<Vec<Record>, StorageError> {
        Ok(self
            .read_bucket(bucket)?
            .into_iter()
            .filter(|r| wanted(r.id))
            .collect())
    }

    /// Number of records in `bucket` (0 if absent).
    fn bucket_len(&self, bucket: BucketId) -> usize;

    /// Deletes `bucket`, releasing its space. Deleting a non-existent bucket
    /// is a no-op.
    fn delete_bucket(&mut self, bucket: BucketId) -> Result<(), StorageError>;

    /// All existing bucket ids (unspecified order).
    fn bucket_ids(&self) -> Vec<BucketId>;

    /// Total records across buckets.
    fn total_records(&self) -> u64;

    /// Flushes to durable media where applicable.
    fn flush(&mut self) -> Result<(), StorageError>;

    /// Point-in-time I/O statistics.
    fn stats(&self) -> IoStats;

    /// Human-readable backend name (appears in experiment reports, cf.
    /// "Storage type" column of the paper's Table 2).
    fn backend_name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_id_display() {
        assert_eq!(BucketId(17).to_string(), "b17");
    }

    #[test]
    fn io_stats_merge_from_sums_all_counters() {
        let mut total = IoStats {
            page_reads: 1,
            page_writes: 2,
            pool_hits: 3,
            records_appended: 4,
            records_read: 5,
            wal_appends: 6,
            pages_recovered: 7,
            crc_failures: 8,
        };
        total.merge_from(&IoStats {
            page_reads: 10,
            page_writes: 20,
            pool_hits: 30,
            records_appended: 40,
            records_read: 50,
            wal_appends: 60,
            pages_recovered: 70,
            crc_failures: 80,
        });
        assert_eq!(
            total,
            IoStats {
                page_reads: 11,
                page_writes: 22,
                pool_hits: 33,
                records_appended: 44,
                records_read: 55,
                wal_appends: 66,
                pages_recovered: 77,
                crc_failures: 88,
            }
        );
    }

    #[test]
    fn errors_display() {
        assert!(StorageError::UnknownBucket(BucketId(1))
            .to_string()
            .contains("unknown bucket"));
        assert!(StorageError::Corrupt("bad magic".into())
            .to_string()
            .contains("bad magic"));
        assert!(StorageError::RecordTooLarge(9).to_string().contains("9"));
        let io: StorageError = std::io::Error::other("x").into();
        assert!(io.to_string().contains("I/O"));
    }
}
