//! Page format v2: 4 KiB pages with a checksummed header.
//!
//! Every page of the paged store carries a 32-byte header so that torn
//! writes, bit rot and stale images are *detectable* (CRC32 over the whole
//! page) and *orderable* (the page LSN gates write-ahead-log replay):
//!
//! ```text
//! offset  size  field
//! 0       4     crc32   — CRC of the whole page, this field zeroed
//! 4       4     magic   — "SCP2"
//! 8       4     page_id — must match the slot the page was read from
//! 12      8     lsn     — commit batch that last wrote this page
//! 20      4     next    — chain link (0 = end of chain)
//! 24      2     used    — payload bytes in use (<= PAGE_CAP)
//! 26      6     reserved, zero
//! 32      4064  payload
//! ```
//!
//! Page 0 of the file is a *stamp* page (magic prefix, never rewritten
//! after creation) so page ids are never 0 and `next == 0` can mean nil.
//!
//! This module is part of the storage recovery path enforced at **zero
//! panic sites** by `simcloud-analyze` — all parsing is bounds-checked and
//! returns [`StorageError::Corrupt`].

use crate::StorageError;

/// Page size in bytes (matches OS pages and SSD blocks; see the DecentDb
/// rationale quoted in SNIPPETS.md).
pub const PAGE_SIZE: usize = 4096;
/// Bytes of the v2 page header.
pub const PAGE_HDR: usize = 32;
/// Payload capacity of one page.
pub const PAGE_CAP: usize = PAGE_SIZE - PAGE_HDR;
/// Magic of a v2 data page.
pub const PAGE_MAGIC: [u8; 4] = *b"SCP2";
/// Magic prefix of the stamp page (page 0).
pub const STAMP_MAGIC: [u8; 8] = *b"SCLDSTO2";

const OFF_CRC: usize = 0;
const OFF_MAGIC: usize = 4;
const OFF_PAGE_ID: usize = 8;
const OFF_LSN: usize = 12;
const OFF_NEXT: usize = 20;
const OFF_USED: usize = 24;

/// Parsed v2 page header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageHeader {
    /// Slot this page claims to live in.
    pub page_id: u32,
    /// Commit batch that last wrote the page.
    pub lsn: u64,
    /// Chain link (0 = nil).
    pub next: u32,
    /// Payload bytes in use.
    pub used: u16,
}

// ---- CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) ---------------------

static CRC_TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();

fn crc_table() -> &'static [u32; 256] {
    CRC_TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (slot, i) in table.iter_mut().zip(0u32..) {
            let mut c = i;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

fn crc_update(state: u32, bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = state;
    for &b in bytes {
        let idx = ((c ^ u32::from(b)) & 0xFF) as usize;
        // idx < 256 by the mask above; the fallback is unreachable.
        c = (c >> 8) ^ table.get(idx).copied().unwrap_or(0);
    }
    c
}

/// CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc_update(0xFFFF_FFFF, bytes)
}

/// CRC32 of a page image with its 4-byte crc field treated as zero —
/// avoids copying 4 KiB per verification.
fn crc32_of_page(buf: &[u8]) -> Result<u32, StorageError> {
    let tail = buf
        .get(OFF_MAGIC..)
        .ok_or_else(|| StorageError::Corrupt("page image shorter than crc field".into()))?;
    let c = crc_update(0xFFFF_FFFF, &[0, 0, 0, 0]);
    Ok(!crc_update(c, tail))
}

// ---- bounds-checked little-endian accessors -----------------------------

/// `len` bytes of `buf` at `off`, or a typed corruption error.
pub(crate) fn get_bytes(buf: &[u8], off: usize, len: usize) -> Result<&[u8], StorageError> {
    buf.get(off..off.saturating_add(len))
        .ok_or_else(|| StorageError::Corrupt(format!("truncated field at byte {off}")))
}

/// Little-endian `u16` at `off`.
pub(crate) fn read_u16(buf: &[u8], off: usize) -> Result<u16, StorageError> {
    let bytes = get_bytes(buf, off, 2)?;
    let arr: [u8; 2] = bytes
        .try_into()
        .map_err(|_| StorageError::Corrupt(format!("truncated u16 at byte {off}")))?;
    Ok(u16::from_le_bytes(arr))
}

/// Little-endian `u32` at `off`.
pub(crate) fn read_u32(buf: &[u8], off: usize) -> Result<u32, StorageError> {
    let bytes = get_bytes(buf, off, 4)?;
    let arr: [u8; 4] = bytes
        .try_into()
        .map_err(|_| StorageError::Corrupt(format!("truncated u32 at byte {off}")))?;
    Ok(u32::from_le_bytes(arr))
}

/// Little-endian `u64` at `off`.
pub(crate) fn read_u64(buf: &[u8], off: usize) -> Result<u64, StorageError> {
    let bytes = get_bytes(buf, off, 8)?;
    let arr: [u8; 8] = bytes
        .try_into()
        .map_err(|_| StorageError::Corrupt(format!("truncated u64 at byte {off}")))?;
    Ok(u64::from_le_bytes(arr))
}

/// Copies `data` into `buf` at `off`, or reports corruption (an in-memory
/// page image too short to hold its own header).
pub(crate) fn put_bytes(buf: &mut [u8], off: usize, data: &[u8]) -> Result<(), StorageError> {
    let dst = buf
        .get_mut(off..off.saturating_add(data.len()))
        .ok_or_else(|| StorageError::Corrupt(format!("page image too short at byte {off}")))?;
    dst.copy_from_slice(data);
    Ok(())
}

// ---- page header ---------------------------------------------------------

/// Initializes a fresh page image in place: magic, `page_id`, zero lsn,
/// nil chain link, zero payload bytes used. The CRC is *not* stamped —
/// that happens once per commit in [`seal_page`].
pub fn init_page(buf: &mut [u8], page_id: u32) -> Result<(), StorageError> {
    buf.fill(0);
    put_bytes(buf, OFF_MAGIC, &PAGE_MAGIC)?;
    put_bytes(buf, OFF_PAGE_ID, &page_id.to_le_bytes())?;
    Ok(())
}

/// Writes the chain link field.
pub fn set_next(buf: &mut [u8], next: u32) -> Result<(), StorageError> {
    put_bytes(buf, OFF_NEXT, &next.to_le_bytes())
}

/// Writes the used-bytes field.
pub fn set_used(buf: &mut [u8], used: u16) -> Result<(), StorageError> {
    put_bytes(buf, OFF_USED, &used.to_le_bytes())
}

/// Reads the chain link field without a full parse (pool-resident pages
/// were already verified on read).
pub fn get_next(buf: &[u8]) -> Result<u32, StorageError> {
    read_u32(buf, OFF_NEXT)
}

/// Reads the used-bytes field without a full parse.
pub fn get_used(buf: &[u8]) -> Result<u16, StorageError> {
    read_u16(buf, OFF_USED)
}

/// Stamps `lsn` and the CRC into a page image — the last step before the
/// image is logged and checkpointed. After this the page verifies.
pub fn seal_page(buf: &mut [u8], lsn: u64) -> Result<(), StorageError> {
    put_bytes(buf, OFF_LSN, &lsn.to_le_bytes())?;
    put_bytes(buf, OFF_CRC, &[0, 0, 0, 0])?;
    let crc = crc32_of_page(buf)?;
    put_bytes(buf, OFF_CRC, &crc.to_le_bytes())
}

/// Verifies and parses a page image read from slot `expect_id` (pass
/// `None` to skip the slot check, e.g. when probing an unknown image).
/// Magic, CRC, slot match and `used <= PAGE_CAP` are all enforced.
pub fn parse_page(buf: &[u8], expect_id: Option<u32>) -> Result<PageHeader, StorageError> {
    if buf.len() != PAGE_SIZE {
        return Err(StorageError::Corrupt(format!(
            "page image of {} bytes (want {PAGE_SIZE})",
            buf.len()
        )));
    }
    if get_bytes(buf, OFF_MAGIC, 4)? != PAGE_MAGIC {
        return Err(StorageError::Corrupt("bad page magic".into()));
    }
    let stored_crc = read_u32(buf, OFF_CRC)?;
    let actual_crc = crc32_of_page(buf)?;
    if stored_crc != actual_crc {
        return Err(StorageError::Corrupt(format!(
            "page crc mismatch (stored {stored_crc:08x}, computed {actual_crc:08x})"
        )));
    }
    let page_id = read_u32(buf, OFF_PAGE_ID)?;
    if let Some(expect) = expect_id {
        if page_id != expect {
            return Err(StorageError::Corrupt(format!(
                "page claims id {page_id}, read from slot {expect}"
            )));
        }
    }
    let lsn = read_u64(buf, OFF_LSN)?;
    let next = read_u32(buf, OFF_NEXT)?;
    let used = read_u16(buf, OFF_USED)?;
    if usize::from(used) > PAGE_CAP {
        return Err(StorageError::Corrupt(format!(
            "page {page_id} claims {used} used bytes (cap {PAGE_CAP})"
        )));
    }
    Ok(PageHeader {
        page_id,
        lsn,
        next,
        used,
    })
}

/// The stamp page occupying slot 0 (written once at creation).
pub fn stamp_page() -> Vec<u8> {
    let mut page = vec![0u8; PAGE_SIZE];
    if put_bytes(&mut page, 0, &STAMP_MAGIC).is_err() {
        // PAGE_SIZE > 8; unreachable, kept total instead of panicking.
        return page;
    }
    page
}

/// True when `buf` starts with the stamp magic.
pub fn is_stamp(buf: &[u8]) -> bool {
    buf.get(..STAMP_MAGIC.len())
        .is_some_and(|head| head == STAMP_MAGIC)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn seal_then_parse_round_trip() {
        let mut page = vec![0u8; PAGE_SIZE];
        init_page(&mut page, 7).unwrap();
        set_next(&mut page, 9).unwrap();
        set_used(&mut page, 123).unwrap();
        seal_page(&mut page, 42).unwrap();
        let hdr = parse_page(&page, Some(7)).unwrap();
        assert_eq!(
            hdr,
            PageHeader {
                page_id: 7,
                lsn: 42,
                next: 9,
                used: 123
            }
        );
    }

    #[test]
    fn parse_rejects_any_flipped_bit_in_header() {
        let mut page = vec![0u8; PAGE_SIZE];
        init_page(&mut page, 3).unwrap();
        set_used(&mut page, 10).unwrap();
        seal_page(&mut page, 1).unwrap();
        for byte in [0usize, 4, 8, 12, 20, 24, 31, 32, 100, PAGE_SIZE - 1] {
            let mut bad = page.clone();
            bad[byte] ^= 0x01;
            assert!(
                parse_page(&bad, Some(3)).is_err(),
                "flip at byte {byte} undetected"
            );
        }
    }

    #[test]
    fn parse_rejects_wrong_slot() {
        let mut page = vec![0u8; PAGE_SIZE];
        init_page(&mut page, 5).unwrap();
        seal_page(&mut page, 1).unwrap();
        assert!(parse_page(&page, Some(6)).is_err());
        assert!(parse_page(&page, None).is_ok(), "slot check is optional");
    }

    #[test]
    fn parse_rejects_oversized_used() {
        let mut page = vec![0u8; PAGE_SIZE];
        init_page(&mut page, 5).unwrap();
        set_used(&mut page, (PAGE_CAP + 1) as u16).unwrap();
        seal_page(&mut page, 1).unwrap();
        let err = parse_page(&page, Some(5)).unwrap_err();
        assert!(err.to_string().contains("used bytes"));
    }

    #[test]
    fn parse_rejects_short_image() {
        assert!(parse_page(&[0u8; 100], None).is_err());
    }

    #[test]
    fn stamp_round_trip() {
        let s = stamp_page();
        assert_eq!(s.len(), PAGE_SIZE);
        assert!(is_stamp(&s));
        assert!(!is_stamp(&[0u8; PAGE_SIZE]));
        assert!(!is_stamp(b"SC"));
    }
}
