//! Storage-layer timing: WAL appends, the commit-point fsync and the
//! checkpoint, bound into a [`Registry`] under the `wal` component.
//!
//! A server front end binds one of these against its registry
//! (`DiskStore::bind_telemetry`), so a `MetricsSnapshot` answer carries
//! the durability costs of the paged store alongside the request-path
//! metrics. Timing follows the registry's enabled switch; an unbound or
//! disabled store reads no clocks on the flush path.

use std::sync::Arc;

use simcloud_telemetry::{Histogram, Registry, SpanTimer};

/// Histograms for the commit protocol, bound to one registry.
///
/// * `wal.append` — one record per flush: serializing every dirty page
///   frame plus the commit frame into the log.
/// * `wal.fsync` — one record per flush: the log sync that **is** the
///   commit point.
/// * `wal.checkpoint` — one record per flush: writing the sealed pages in
///   place, syncing the page file, publishing the clean meta and
///   truncating the log.
#[derive(Debug, Clone)]
pub struct StorageTiming {
    registry: Registry,
    wal_append: Arc<Histogram>,
    wal_fsync: Arc<Histogram>,
    checkpoint: Arc<Histogram>,
}

impl StorageTiming {
    /// Registers the storage histograms on `registry` and binds to its
    /// enabled switch.
    pub fn bind(registry: &Registry) -> Self {
        StorageTiming {
            registry: registry.clone(),
            wal_append: registry.histogram("wal", "append"),
            wal_fsync: registry.histogram("wal", "fsync"),
            checkpoint: registry.histogram("wal", "checkpoint"),
        }
    }

    /// RAII timer for one flush's WAL frame appends (free when disabled).
    pub(crate) fn wal_append_timer(&self) -> SpanTimer<'_> {
        SpanTimer::new(&self.wal_append, self.registry.enabled())
    }

    /// RAII timer for the commit-point fsync (free when disabled).
    pub(crate) fn wal_fsync_timer(&self) -> SpanTimer<'_> {
        SpanTimer::new(&self.wal_fsync, self.registry.enabled())
    }

    /// RAII timer for the checkpoint section (free when disabled).
    pub(crate) fn checkpoint_timer(&self) -> SpanTimer<'_> {
        SpanTimer::new(&self.checkpoint, self.registry.enabled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timers_record_into_their_histograms() {
        let registry = Registry::new();
        let timing = StorageTiming::bind(&registry);
        {
            let _a = timing.wal_append_timer();
            let _f = timing.wal_fsync_timer();
            let _c = timing.checkpoint_timer();
        }
        let text = registry.render();
        assert!(text.contains("histogram wal.append count=1"), "{text}");
        assert!(text.contains("histogram wal.fsync count=1"), "{text}");
        assert!(text.contains("histogram wal.checkpoint count=1"), "{text}");
    }
}
