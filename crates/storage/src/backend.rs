//! Storage backends: the seam between the paged engine and the OS.
//!
//! [`DiskStore`](crate::DiskStore)'s engine talks to its three durable
//! artefacts — the page file, the write-ahead log, and the meta file —
//! exclusively through [`StorageEnv`] / [`Backend`]. Production uses
//! [`FileEnv`] (real files, atomic temp-file + rename meta). Tests use
//! [`FaultEnv`], an in-memory environment that models the durability
//! semantics of a real OS (`sync` promotes volatile bytes to durable
//! ones) and can inject a crash at any mutating operation: the write is
//! dropped, kept, or torn, every later operation fails, and the test then
//! harvests the byte images a real machine would find after power loss
//! and reopens the store over them.
//!
//! Like the rest of the recovery path, this module is enforced at zero
//! panic sites by `simcloud-analyze`.

use std::io::{Read, Seek, SeekFrom, Write};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::StorageError;

/// Positioned I/O over one durable artefact (page file or WAL).
///
/// Offsets are absolute byte positions; `write_at` beyond the current end
/// zero-extends. Implementations map failures to [`StorageError`] — the
/// engine never touches `std::fs` directly, so every fault the harness can
/// inject flows through the same error path a real disk fault would.
#[allow(clippy::len_without_is_empty)] // `len` is a file size, not a collection
pub trait Backend: Send {
    /// Fills `buf` from the file at `off`; errors if the range is absent.
    fn read_at(&mut self, off: u64, buf: &mut [u8]) -> Result<(), StorageError>;
    /// Writes `data` at `off`, zero-extending the file if needed.
    fn write_at(&mut self, off: u64, data: &[u8]) -> Result<(), StorageError>;
    /// Current file length in bytes.
    fn len(&mut self) -> Result<u64, StorageError>;
    /// Truncates or zero-extends the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> Result<(), StorageError>;
    /// Makes everything written so far durable (fsync).
    fn sync(&mut self) -> Result<(), StorageError>;
}

/// The three durable artefacts of one store, bundled.
///
/// `store_meta` is the atomicity primitive: it must install `bytes` as the
/// complete new meta document or leave the old one intact — never a torn
/// mix — and must be durable when it returns ([`FileEnv`] implements it as
/// temp-file + fsync + rename + parent-directory fsync, the QuiverDB
/// recipe quoted in SNIPPETS.md).
pub trait StorageEnv: Send {
    /// The page file.
    fn pages(&mut self) -> &mut dyn Backend;
    /// The write-ahead log.
    fn wal(&mut self) -> &mut dyn Backend;
    /// Both artefacts at once — recovery interleaves WAL reads with page
    /// writes and needs disjoint borrows.
    fn pages_and_wal(&mut self) -> (&mut dyn Backend, &mut dyn Backend);
    /// Reads the current meta document, `None` if none was ever stored.
    fn load_meta(&mut self) -> Result<Option<Vec<u8>>, StorageError>;
    /// Atomically + durably replaces the meta document.
    fn store_meta(&mut self, bytes: &[u8]) -> Result<(), StorageError>;
}

// ---- real files ----------------------------------------------------------

/// `Backend` over a real [`std::fs::File`].
#[derive(Debug)]
struct FileBackend {
    file: std::fs::File,
}

impl Backend for FileBackend {
    fn read_at(&mut self, off: u64, buf: &mut [u8]) -> Result<(), StorageError> {
        self.file.seek(SeekFrom::Start(off))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn write_at(&mut self, off: u64, data: &[u8]) -> Result<(), StorageError> {
        self.file.seek(SeekFrom::Start(off))?;
        self.file.write_all(data)?;
        Ok(())
    }

    fn len(&mut self) -> Result<u64, StorageError> {
        Ok(self.file.metadata()?.len())
    }

    fn set_len(&mut self, len: u64) -> Result<(), StorageError> {
        self.file.set_len(len)?;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// Production environment: `<path>` (pages), `<path>.wal`, `<path>.meta`.
#[derive(Debug)]
pub struct FileEnv {
    pages: FileBackend,
    wal: FileBackend,
    meta_path: std::path::PathBuf,
    meta_tmp_path: std::path::PathBuf,
    dir: Option<std::path::PathBuf>,
}

fn sibling(path: &std::path::Path, suffix: &str) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(suffix);
    std::path::PathBuf::from(os)
}

impl FileEnv {
    /// Opens (creating if absent) the page file and its sidecars.
    pub fn open(path: &std::path::Path) -> Result<Self, StorageError> {
        let mut opts = std::fs::OpenOptions::new();
        opts.read(true).write(true).create(true).truncate(false);
        let pages = FileBackend {
            file: opts.open(path)?,
        };
        let wal = FileBackend {
            file: opts.open(sibling(path, ".wal"))?,
        };
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        Ok(FileEnv {
            pages,
            wal,
            meta_path: sibling(path, ".meta"),
            meta_tmp_path: sibling(path, ".meta.tmp"),
            dir: dir.map(std::path::Path::to_path_buf),
        })
    }

    /// Deletes the sidecar files of `path` (used when re-creating a store
    /// over a stale path).
    pub fn remove_sidecars(path: &std::path::Path) {
        let _ = std::fs::remove_file(sibling(path, ".wal"));
        let _ = std::fs::remove_file(sibling(path, ".meta"));
        let _ = std::fs::remove_file(sibling(path, ".meta.tmp"));
    }
}

impl StorageEnv for FileEnv {
    fn pages(&mut self) -> &mut dyn Backend {
        &mut self.pages
    }

    fn wal(&mut self) -> &mut dyn Backend {
        &mut self.wal
    }

    fn pages_and_wal(&mut self) -> (&mut dyn Backend, &mut dyn Backend) {
        (&mut self.pages, &mut self.wal)
    }

    fn load_meta(&mut self) -> Result<Option<Vec<u8>>, StorageError> {
        match std::fs::read(&self.meta_path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn store_meta(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        {
            let mut tmp = std::fs::File::create(&self.meta_tmp_path)?;
            tmp.write_all(bytes)?;
            tmp.sync_all()?;
        }
        std::fs::rename(&self.meta_tmp_path, &self.meta_path)?;
        // Make the rename itself durable: fsync the containing directory
        // (no-op platforms surface the error, which we treat as fatal —
        // pretending durability would defeat the recovery contract).
        if let Some(dir) = &self.dir {
            std::fs::File::open(dir)?.sync_all()?;
        }
        Ok(())
    }
}

// ---- fault-injection environment -----------------------------------------

/// What happens to the mutating operation the crash lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrashMode {
    /// The operation is lost, and so is everything volatile: the harvest
    /// keeps only bytes that were `sync`ed. The strictest model — catches
    /// missing-fsync bugs.
    #[default]
    DropUnsynced,
    /// The operation and all volatile bytes survive (the OS happened to
    /// write everything back before dying).
    KeepUnsynced,
    /// A deterministic prefix of the crashing write survives along with
    /// all volatile bytes — the torn-page / torn-frame case.
    TornWrite,
}

/// A bit flip injected into the `op_index`-th mutating operation's data
/// (silent media corruption, as opposed to a crash).
#[derive(Debug, Clone, Copy)]
pub struct BitFlip {
    /// Which mutating operation to corrupt (0-based, same counter as
    /// [`FaultPlan::crash_at`]).
    pub op_index: u64,
    /// Byte offset within that operation's data.
    pub byte: usize,
    /// XOR mask applied to the byte.
    pub mask: u8,
}

/// Crash / corruption schedule for a [`FaultEnv`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Crash at the N-th mutating operation (counted across the page
    /// file, the WAL and `store_meta`). `None` = never crash.
    pub crash_at: Option<u64>,
    /// How the crashing operation is applied.
    pub mode: CrashMode,
    /// Optional silent bit flip.
    pub flip: Option<BitFlip>,
}

/// One simulated file: `durable` is what survives a [`CrashMode::DropUnsynced`]
/// crash, `current` what the running process observes. `sync` copies
/// current over durable.
#[derive(Debug, Clone, Default)]
struct FaultFile {
    durable: Vec<u8>,
    current: Vec<u8>,
}

impl FaultFile {
    fn write_at(&mut self, off: u64, data: &[u8]) {
        let off = off as usize;
        let end = off.saturating_add(data.len());
        if self.current.len() < end {
            self.current.resize(end, 0);
        }
        if let Some(dst) = self.current.get_mut(off..end) {
            dst.copy_from_slice(data);
        }
    }
}

#[derive(Debug, Default)]
struct FaultState {
    pages: FaultFile,
    wal: FaultFile,
    meta: Option<Vec<u8>>,
    plan: FaultPlan,
    ops: u64,
    crashed: bool,
}

/// Byte images a post-crash machine would find on disk.
#[derive(Debug, Clone)]
pub struct SurvivingImage {
    /// Page file bytes.
    pub pages: Vec<u8>,
    /// WAL bytes.
    pub wal: Vec<u8>,
    /// Meta document, if one was ever durably stored.
    pub meta: Option<Vec<u8>>,
}

fn injected_crash() -> StorageError {
    StorageError::Io(std::io::Error::other("injected crash"))
}

/// Deterministic torn-write length for the `op`-th operation over `len`
/// bytes of data (splitmix-style hash, so every crash point tears at a
/// different boundary without any global RNG).
fn torn_len(op: u64, len: usize) -> usize {
    let mut z = op.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z as usize) % len.saturating_add(1)
}

#[derive(Debug, Clone, Copy)]
enum FileSel {
    Pages,
    Wal,
}

impl FaultState {
    fn file_mut(&mut self, sel: FileSel) -> &mut FaultFile {
        match sel {
            FileSel::Pages => &mut self.pages,
            FileSel::Wal => &mut self.wal,
        }
    }

    /// Accounts one mutating operation. Returns `Ok(op_index)` when the
    /// operation should proceed normally, `Err` when the environment has
    /// crashed (now or earlier). On the crashing operation the caller's
    /// effect has already been applied per [`CrashMode`] by `apply`.
    fn mutate<F>(&mut self, apply: F) -> Result<(), StorageError>
    where
        F: FnOnce(&mut FaultState, u64, CrashMode, bool),
    {
        if self.crashed {
            return Err(injected_crash());
        }
        let op = self.ops;
        self.ops += 1;
        let crash_now = self.plan.crash_at == Some(op);
        let mode = self.plan.mode;
        apply(self, op, mode, crash_now);
        if crash_now {
            self.crashed = true;
            return Err(injected_crash());
        }
        Ok(())
    }

    fn check_alive(&self) -> Result<(), StorageError> {
        if self.crashed {
            Err(injected_crash())
        } else {
            Ok(())
        }
    }
}

/// Per-file adapter returned by [`FaultEnv::pages`] / [`FaultEnv::wal`].
#[derive(Debug)]
pub struct FaultPort {
    sel: FileSel,
    state: Arc<Mutex<FaultState>>,
}

impl Backend for FaultPort {
    fn read_at(&mut self, off: u64, buf: &mut [u8]) -> Result<(), StorageError> {
        let inner = self.state.lock();
        inner.check_alive()?;
        let file = match self.sel {
            FileSel::Pages => &inner.pages,
            FileSel::Wal => &inner.wal,
        };
        let start = off as usize;
        let end = start.saturating_add(buf.len());
        let src = file.current.get(start..end).ok_or_else(|| {
            StorageError::Corrupt(format!(
                "read of {} bytes at {off} past end of file ({} bytes)",
                buf.len(),
                file.current.len()
            ))
        })?;
        buf.copy_from_slice(src);
        Ok(())
    }

    fn write_at(&mut self, off: u64, data: &[u8]) -> Result<(), StorageError> {
        let sel = self.sel;
        let mut inner = self.state.lock();
        inner.mutate(|state, op, mode, crash_now| {
            let flipped: Option<Vec<u8>> = state.plan.flip.filter(|f| f.op_index == op).map(|f| {
                let mut v = data.to_vec();
                if let Some(b) = v.get_mut(f.byte) {
                    *b ^= f.mask;
                }
                v
            });
            let payload: &[u8] = flipped.as_deref().unwrap_or(data);
            if crash_now {
                match mode {
                    CrashMode::DropUnsynced => {}
                    CrashMode::KeepUnsynced => state.file_mut(sel).write_at(off, payload),
                    CrashMode::TornWrite => {
                        let keep = torn_len(op, payload.len());
                        if let Some(prefix) = payload.get(..keep) {
                            state.file_mut(sel).write_at(off, prefix);
                        }
                    }
                }
            } else {
                state.file_mut(sel).write_at(off, payload);
            }
        })
    }

    fn len(&mut self) -> Result<u64, StorageError> {
        let inner = self.state.lock();
        inner.check_alive()?;
        let file = match self.sel {
            FileSel::Pages => &inner.pages,
            FileSel::Wal => &inner.wal,
        };
        Ok(file.current.len() as u64)
    }

    fn set_len(&mut self, len: u64) -> Result<(), StorageError> {
        let sel = self.sel;
        let mut inner = self.state.lock();
        inner.mutate(|state, _op, mode, crash_now| {
            if !crash_now || !matches!(mode, CrashMode::DropUnsynced) {
                state.file_mut(sel).current.resize(len as usize, 0);
            }
        })
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        let sel = self.sel;
        let mut inner = self.state.lock();
        inner.mutate(|state, _op, mode, crash_now| {
            if !crash_now || !matches!(mode, CrashMode::DropUnsynced) {
                let file = state.file_mut(sel);
                file.durable = file.current.clone();
            }
        })
    }
}

/// In-memory [`StorageEnv`] with crash and bit-flip injection.
#[derive(Debug)]
pub struct FaultEnv {
    pages_port: FaultPort,
    wal_port: FaultPort,
    state: Arc<Mutex<FaultState>>,
}

impl FaultEnv {
    /// Empty environment with the given fault schedule.
    pub fn new(plan: FaultPlan) -> Self {
        Self::from_images(SurvivingImage::empty(), plan)
    }

    /// Environment seeded with pre-existing byte images — the post-crash
    /// reopen path of the harness, and the entry point for corruption-
    /// matrix tests that mutate raw images directly.
    pub fn from_images(image: SurvivingImage, plan: FaultPlan) -> Self {
        let state = Arc::new(Mutex::new(FaultState {
            pages: FaultFile {
                durable: image.pages.clone(),
                current: image.pages,
            },
            wal: FaultFile {
                durable: image.wal.clone(),
                current: image.wal,
            },
            meta: image.meta,
            plan,
            ops: 0,
            crashed: false,
        }));
        FaultEnv {
            pages_port: FaultPort {
                sel: FileSel::Pages,
                state: Arc::clone(&state),
            },
            wal_port: FaultPort {
                sel: FileSel::Wal,
                state: Arc::clone(&state),
            },
            state,
        }
    }

    /// Handle for inspecting the environment after the store under test
    /// has crashed (or finished).
    pub fn handle(&self) -> FaultHandle {
        FaultHandle {
            state: Arc::clone(&self.state),
        }
    }
}

impl StorageEnv for FaultEnv {
    fn pages(&mut self) -> &mut dyn Backend {
        &mut self.pages_port
    }

    fn wal(&mut self) -> &mut dyn Backend {
        &mut self.wal_port
    }

    fn pages_and_wal(&mut self) -> (&mut dyn Backend, &mut dyn Backend) {
        (&mut self.pages_port, &mut self.wal_port)
    }

    fn load_meta(&mut self) -> Result<Option<Vec<u8>>, StorageError> {
        let inner = self.state.lock();
        inner.check_alive()?;
        Ok(inner.meta.clone())
    }

    fn store_meta(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        let mut inner = self.state.lock();
        inner.mutate(|state, _op, mode, crash_now| {
            // Atomic + durable by contract: on the crashing op the rename
            // either happened (Keep/Torn) or it didn't (Drop) — never torn.
            if !crash_now || !matches!(mode, CrashMode::DropUnsynced) {
                state.meta = Some(bytes.to_vec());
            }
        })
    }
}

impl SurvivingImage {
    /// Three empty artefacts (a store that was never created).
    pub fn empty() -> Self {
        SurvivingImage {
            pages: Vec::new(),
            wal: Vec::new(),
            meta: None,
        }
    }
}

/// Post-crash inspector for a [`FaultEnv`].
#[derive(Debug)]
pub struct FaultHandle {
    state: Arc<Mutex<FaultState>>,
}

impl FaultHandle {
    /// Whether the planned crash fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Mutating operations observed so far — run a schedule once with no
    /// crash to learn how many crash points it has.
    pub fn ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// The byte images a reboot would find, per the plan's [`CrashMode`]:
    /// only `sync`ed bytes survive `DropUnsynced`; everything the process
    /// wrote survives the other modes.
    pub fn surviving(&self) -> SurvivingImage {
        let inner = self.state.lock();
        let (pages, wal) = match inner.plan.mode {
            CrashMode::DropUnsynced => (inner.pages.durable.clone(), inner.wal.durable.clone()),
            CrashMode::KeepUnsynced | CrashMode::TornWrite => {
                (inner.pages.current.clone(), inner.wal.current.clone())
            }
        };
        SurvivingImage {
            pages,
            wal,
            meta: inner.meta.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_fault() -> FaultPlan {
        FaultPlan::default()
    }

    #[test]
    fn fault_env_round_trips_bytes() {
        let mut env = FaultEnv::new(no_fault());
        env.pages().write_at(4, b"hello").unwrap();
        let mut buf = [0u8; 5];
        env.pages().read_at(4, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        assert_eq!(env.pages().len().unwrap(), 9);
        // The WAL is a separate file.
        assert_eq!(env.wal().len().unwrap(), 0);
        env.pages().set_len(2).unwrap();
        assert_eq!(env.pages().len().unwrap(), 2);
    }

    #[test]
    fn read_past_end_is_typed_corrupt() {
        let mut env = FaultEnv::new(no_fault());
        let mut buf = [0u8; 8];
        let err = env.pages().read_at(0, &mut buf).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
    }

    #[test]
    fn drop_unsynced_keeps_only_synced_bytes() {
        let mut env = FaultEnv::new(FaultPlan {
            crash_at: Some(2),
            mode: CrashMode::DropUnsynced,
            flip: None,
        });
        env.pages().write_at(0, b"AAAA").unwrap(); // op 0
        env.pages().sync().unwrap(); // op 1
        let err = env.pages().write_at(0, b"BBBB").unwrap_err(); // op 2: crash
        assert!(matches!(err, StorageError::Io(_)));
        // Everything after the crash fails, including reads.
        assert!(env.pages().len().is_err());
        assert!(env.load_meta().is_err());
        let image = env.handle().surviving();
        assert_eq!(image.pages, b"AAAA");
    }

    #[test]
    fn keep_unsynced_keeps_the_crashing_write() {
        let mut env = FaultEnv::new(FaultPlan {
            crash_at: Some(0),
            mode: CrashMode::KeepUnsynced,
            flip: None,
        });
        assert!(env.pages().write_at(0, b"CCCC").is_err());
        assert_eq!(env.handle().surviving().pages, b"CCCC");
    }

    #[test]
    fn torn_write_keeps_a_strict_prefix_somewhere() {
        // Over many crash points the torn length must actually vary and
        // stay within [0, len].
        let mut seen = std::collections::HashSet::new();
        for op in 0..32u64 {
            let keep = torn_len(op, 100);
            assert!(keep <= 100);
            seen.insert(keep);
        }
        assert!(seen.len() > 4, "torn lengths are not varying: {seen:?}");
    }

    #[test]
    fn torn_write_applies_prefix_of_crashing_write() {
        for op in 0..8u64 {
            let mut env = FaultEnv::new(FaultPlan {
                crash_at: Some(op),
                mode: CrashMode::TornWrite,
                flip: None,
            });
            let mut failed = false;
            for i in 0..=op {
                let data = [i as u8 + 1; 16];
                if env.pages().write_at(i * 16, &data).is_err() {
                    failed = true;
                    break;
                }
            }
            assert!(failed);
            let image = env.handle().surviving();
            let keep = torn_len(op, 16);
            // Full bytes of every earlier write survive; the crashing
            // write contributes exactly its torn prefix.
            assert_eq!(image.pages.len() as u64, op * 16 + keep as u64);
        }
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_byte() {
        let mut env = FaultEnv::new(FaultPlan {
            crash_at: None,
            mode: CrashMode::KeepUnsynced,
            flip: Some(BitFlip {
                op_index: 1,
                byte: 2,
                mask: 0x80,
            }),
        });
        env.pages().write_at(0, &[1, 2, 3, 4]).unwrap(); // op 0: untouched
        env.pages().write_at(4, &[5, 6, 7, 8]).unwrap(); // op 1: flipped
        let mut buf = [0u8; 8];
        env.pages().read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4, 5, 6, 7 ^ 0x80, 8]);
    }

    #[test]
    fn store_meta_is_atomic_under_drop_crash() {
        let mut env = FaultEnv::new(FaultPlan {
            crash_at: Some(1),
            mode: CrashMode::DropUnsynced,
            flip: None,
        });
        env.store_meta(b"old").unwrap(); // op 0
        assert!(env.store_meta(b"new").is_err()); // op 1: crash, dropped
        assert_eq!(env.handle().surviving().meta.as_deref(), Some(&b"old"[..]));

        let mut env = FaultEnv::new(FaultPlan {
            crash_at: Some(1),
            mode: CrashMode::KeepUnsynced,
            flip: None,
        });
        env.store_meta(b"old").unwrap();
        assert!(env.store_meta(b"new").is_err()); // rename landed
        assert_eq!(env.handle().surviving().meta.as_deref(), Some(&b"new"[..]));
    }

    #[test]
    fn reopen_from_surviving_image_sees_the_bytes() {
        let mut env = FaultEnv::new(FaultPlan {
            crash_at: Some(3),
            mode: CrashMode::DropUnsynced,
            flip: None,
        });
        env.pages().write_at(0, b"page").unwrap();
        env.wal().write_at(0, b"wal!").unwrap();
        env.pages().sync().unwrap();
        let _ = env.wal().sync(); // op 3: crash — wal sync dropped
        let image = env.handle().surviving();
        assert_eq!(image.pages, b"page");
        assert!(image.wal.is_empty(), "unsynced wal bytes must vanish");
        let mut reopened = FaultEnv::from_images(image, FaultPlan::default());
        let mut buf = [0u8; 4];
        reopened.pages().read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"page");
    }

    #[test]
    fn file_env_round_trips_and_meta_is_atomic() {
        let dir = std::env::temp_dir().join(format!("scld-backend-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.pages");
        {
            let mut env = FileEnv::open(&path).unwrap();
            assert_eq!(env.load_meta().unwrap(), None);
            env.pages().write_at(0, b"abc").unwrap();
            env.wal().write_at(0, b"xyz").unwrap();
            env.pages().sync().unwrap();
            env.store_meta(b"meta-v1").unwrap();
        }
        {
            let mut env = FileEnv::open(&path).unwrap();
            let mut buf = [0u8; 3];
            env.pages().read_at(0, &mut buf).unwrap();
            assert_eq!(&buf, b"abc");
            env.wal().read_at(0, &mut buf).unwrap();
            assert_eq!(&buf, b"xyz");
            assert_eq!(env.load_meta().unwrap().as_deref(), Some(&b"meta-v1"[..]));
            assert_eq!(env.wal().len().unwrap(), 3);
            env.wal().set_len(0).unwrap();
            assert_eq!(env.wal().len().unwrap(), 0);
        }
        FileEnv::remove_sidecars(&path);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
