//! In-memory bucket store — the paper's "Memory storage" (Table 2, YEAST and
//! HUMAN configurations).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::{BucketId, BucketStore, IoStats, Record, StorageError};

/// Volatile bucket store; all data lives in a hash map of vectors.
///
/// Reads are `&self` and fully concurrent: the only mutation on the read
/// path is the `records_read` statistic, kept in an atomic so parallel
/// queries never contend on a lock.
#[derive(Debug, Default)]
pub struct MemoryStore {
    buckets: HashMap<BucketId, Vec<Record>>,
    records_appended: u64,
    records_read: AtomicU64,
}

impl MemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Approximate resident bytes (payload only), for reporting.
    pub fn payload_bytes(&self) -> usize {
        self.buckets
            .values()
            .flat_map(|v| v.iter())
            .map(|r| r.payload.len())
            .sum()
    }
}

impl BucketStore for MemoryStore {
    fn append(&mut self, bucket: BucketId, record: Record) -> Result<(), StorageError> {
        self.records_appended += 1;
        self.buckets.entry(bucket).or_default().push(record);
        Ok(())
    }

    fn read_bucket(&self, bucket: BucketId) -> Result<Vec<Record>, StorageError> {
        let recs = self
            .buckets
            .get(&bucket)
            .ok_or(StorageError::UnknownBucket(bucket))?;
        self.records_read
            .fetch_add(recs.len() as u64, Ordering::Relaxed);
        Ok(recs.clone())
    }

    fn read_matching(
        &self,
        bucket: BucketId,
        wanted: &dyn Fn(u64) -> bool,
    ) -> Result<Vec<Record>, StorageError> {
        let recs = self
            .buckets
            .get(&bucket)
            .ok_or(StorageError::UnknownBucket(bucket))?;
        // Only the returned records count as read back: the id scan never
        // touches (or clones) the other payloads — that is the point.
        let out: Vec<Record> = recs.iter().filter(|r| wanted(r.id)).cloned().collect();
        self.records_read
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        Ok(out)
    }

    fn bucket_len(&self, bucket: BucketId) -> usize {
        self.buckets.get(&bucket).map_or(0, Vec::len)
    }

    fn delete_bucket(&mut self, bucket: BucketId) -> Result<(), StorageError> {
        self.buckets.remove(&bucket);
        Ok(())
    }

    fn bucket_ids(&self) -> Vec<BucketId> {
        self.buckets.keys().copied().collect()
    }

    fn total_records(&self) -> u64 {
        self.buckets.values().map(|v| v.len() as u64).sum()
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        Ok(())
    }

    fn stats(&self) -> IoStats {
        IoStats {
            records_appended: self.records_appended,
            records_read: self.records_read.load(Ordering::Relaxed),
            ..IoStats::default()
        }
    }

    fn backend_name(&self) -> &'static str {
        "Memory storage"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, len: usize) -> Record {
        Record::new(id, vec![id as u8; len])
    }

    #[test]
    fn append_and_read_back_in_order() {
        let mut s = MemoryStore::new();
        s.append(BucketId(1), rec(10, 4)).unwrap();
        s.append(BucketId(1), rec(11, 2)).unwrap();
        s.append(BucketId(2), rec(20, 1)).unwrap();
        let b1 = s.read_bucket(BucketId(1)).unwrap();
        assert_eq!(b1.iter().map(|r| r.id).collect::<Vec<_>>(), vec![10, 11]);
        assert_eq!(s.bucket_len(BucketId(1)), 2);
        assert_eq!(s.bucket_len(BucketId(2)), 1);
        assert_eq!(s.total_records(), 3);
    }

    /// The targeted read returns only matching records (insertion order)
    /// and counts only those as read back.
    #[test]
    fn read_matching_materializes_only_wanted_records() {
        let mut s = MemoryStore::new();
        for id in [10u64, 11, 12, 13] {
            s.append(BucketId(1), rec(id, 64)).unwrap();
        }
        let got = s
            .read_matching(BucketId(1), &|id| id == 11 || id == 13)
            .unwrap();
        assert_eq!(got.iter().map(|r| r.id).collect::<Vec<_>>(), vec![11, 13]);
        assert_eq!(got[0].payload, vec![11u8; 64]);
        assert_eq!(s.stats().records_read, 2, "untouched payloads not counted");
        assert!(s.read_matching(BucketId(1), &|_| false).unwrap().is_empty());
        assert!(matches!(
            s.read_matching(BucketId(7), &|_| true),
            Err(StorageError::UnknownBucket(_))
        ));
    }

    #[test]
    fn unknown_bucket_is_error() {
        let s = MemoryStore::new();
        assert!(matches!(
            s.read_bucket(BucketId(9)),
            Err(StorageError::UnknownBucket(BucketId(9)))
        ));
        assert_eq!(s.bucket_len(BucketId(9)), 0);
    }

    #[test]
    fn delete_bucket_frees_records() {
        let mut s = MemoryStore::new();
        s.append(BucketId(1), rec(1, 8)).unwrap();
        s.delete_bucket(BucketId(1)).unwrap();
        assert_eq!(s.total_records(), 0);
        assert!(s.read_bucket(BucketId(1)).is_err());
        // deleting again is a no-op
        s.delete_bucket(BucketId(1)).unwrap();
    }

    #[test]
    fn stats_track_reads_and_appends() {
        let mut s = MemoryStore::new();
        s.append(BucketId(1), rec(1, 1)).unwrap();
        s.append(BucketId(1), rec(2, 1)).unwrap();
        let _ = s.read_bucket(BucketId(1)).unwrap();
        let st = s.stats();
        assert_eq!(st.records_appended, 2);
        assert_eq!(st.records_read, 2);
        assert_eq!(st.page_reads, 0);
    }

    #[test]
    fn payload_bytes_accounting() {
        let mut s = MemoryStore::new();
        s.append(BucketId(1), rec(1, 10)).unwrap();
        s.append(BucketId(2), rec(2, 5)).unwrap();
        assert_eq!(s.payload_bytes(), 15);
        assert_eq!(s.backend_name(), "Memory storage");
    }

    #[test]
    fn concurrent_reads_count_all_records() {
        let mut s = MemoryStore::new();
        for i in 0..10 {
            s.append(BucketId(1), rec(i, 1)).unwrap();
        }
        let s = std::sync::Arc::new(s);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = std::sync::Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..5 {
                        assert_eq!(s.read_bucket(BucketId(1)).unwrap().len(), 10);
                    }
                });
            }
        });
        assert_eq!(s.stats().records_read, 4 * 5 * 10);
    }
}
