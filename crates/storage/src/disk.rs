//! Single-file paged bucket store — the paper's "Disk storage" (Table 2,
//! CoPhIR configuration), crash-safe since PR 8.
//!
//! Layout (format v2): `<path>` is a file of 4 KiB pages. Slot 0 is a
//! write-once stamp page; every other page carries the checksummed
//! [`pagefmt`] header (crc, magic, page id, lsn, chain link, used bytes)
//! and is either on the free list or part of a chain: bucket chains carry
//! record bytes, the directory chain persists the bucket table on flush.
//! The committed state (page count, free/directory heads, last LSN, clean
//! flag) lives in the sidecar `<path>.meta` ([`Meta`]), replaced
//! atomically; `<path>.wal` ([`wal`]) carries full-page images so a crash
//! at *any* instant recovers to the last `flush()`.
//!
//! Durability contract:
//!
//! * **Mutations never touch the file.** `append`/`delete_bucket` only
//!   dirty pool pages; dirty pages are pinned (the pool evicts clean pages
//!   only), so between flushes the on-disk bytes are exactly the last
//!   committed state.
//! * **`flush()` is the commit point.** It serializes the directory,
//!   seals every dirty page (LSN + CRC), appends them plus a commit frame
//!   (carrying the new meta) to the WAL, fsyncs the WAL — *that sync is
//!   the commit* — then checkpoints the pages in place, fsyncs them,
//!   atomically replaces the meta (`clean = 1`) and truncates the WAL.
//! * **`open()` recovers automatically** when the meta is unclean or the
//!   WAL is non-empty: committed WAL batches are replayed LSN-gated,
//!   torn tails discarded, and the result is reported via
//!   [`IoStats::pages_recovered`] / [`DiskStore::recovered_on_open`].
//!
//! A small LRU buffer pool fronts the file; every pool miss re-verifies
//! the page CRC. Concurrency model: the file, directory and buffer pool
//! live behind one [`parking_lot::Mutex`] — the disk model's latch.
//! `&self` reads from many query threads are therefore *safe* but
//! serialized at the device, exactly like a single spindle/buffer pool.
//!
//! This module is part of the storage recovery path enforced at zero
//! panic sites by `simcloud-analyze`.
//!
//! [`Meta`]: crate::meta::Meta
//! [`wal`]: crate::wal

use std::collections::HashMap;
use std::path::Path;

use parking_lot::Mutex;
use simcloud_telemetry::Registry;

use crate::backend::{FileEnv, StorageEnv};
use crate::meta::Meta;
use crate::pagefmt::{
    self, get_bytes, read_u16, read_u32, read_u64, PAGE_CAP, PAGE_HDR, PAGE_SIZE,
};
use crate::telemetry::StorageTiming;
use crate::wal;
use crate::{BucketId, BucketStore, IoStats, Record, StorageError};

const NIL: u32 = 0;
/// Bytes per serialized directory entry: bucket u64, head u32, tail u32,
/// tail_used u16, records u64.
const DIR_ENTRY: usize = 26;

/// Construction-time knobs of a [`DiskStore`].
#[derive(Debug, Clone, Copy)]
pub struct DiskStoreOptions {
    /// Buffer-pool capacity in pages (minimum 2). Dirty pages are pinned,
    /// so the pool can temporarily exceed this between flushes.
    pub pool_pages: usize,
    /// Whether flushes are write-ahead logged. With the WAL off a crash
    /// *during* `flush()` can corrupt the store (the data-before-meta
    /// ordering still protects every other instant); the durability bench
    /// measures what the log costs.
    pub wal: bool,
}

impl Default for DiskStoreOptions {
    fn default() -> Self {
        DiskStoreOptions {
            pool_pages: 1024,
            wal: true,
        }
    }
}

#[derive(Clone)]
struct CachedPage {
    data: Vec<u8>,
    dirty: bool,
    last_used: u64,
}

#[derive(Debug, Clone, Copy)]
struct BucketMeta {
    head: u32,
    tail: u32,
    /// bytes used in the tail page (cached to avoid a read on append)
    tail_used: u16,
    records: u64,
}

const EMPTY_BUCKET: BucketMeta = BucketMeta {
    head: NIL,
    tail: NIL,
    tail_used: 0,
    records: 0,
};

/// The mutable paged state: environment, directory, buffer pool,
/// statistics. One mutex guards all of it (see the module docs).
struct Inner {
    env: Box<dyn StorageEnv>,
    page_count: u32,
    free_head: u32,
    dir_head: u32,
    /// Last committed batch; the next flush commits `lsn + 1`.
    lsn: u64,
    wal_enabled: bool,
    directory: HashMap<BucketId, BucketMeta>,
    pool: HashMap<u32, CachedPage>,
    pool_capacity: usize,
    tick: u64,
    stats: IoStats,
    recovered: bool,
    /// Optional flush timing (see [`StorageTiming`]); bound by the server
    /// front end so WAL appends, fsyncs and checkpoints land in its
    /// registry.
    telemetry: Option<StorageTiming>,
}

/// Paged single-file bucket store with WAL-backed crash safety and an LRU
/// buffer pool.
pub struct DiskStore {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for DiskStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("DiskStore")
            .field("pages", &inner.page_count)
            .field("buckets", &inner.directory.len())
            .field("pool", &inner.pool.len())
            .field("lsn", &inner.lsn)
            .finish()
    }
}

impl DiskStore {
    /// Creates a new store file (truncating any existing content) with
    /// default options (1024-page pool, WAL on).
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self, StorageError> {
        Self::create_opts(path, DiskStoreOptions::default())
    }

    /// Creates a new store with an explicit buffer-pool capacity in pages.
    pub fn create_with_pool<P: AsRef<Path>>(
        path: P,
        pool_capacity: usize,
    ) -> Result<Self, StorageError> {
        Self::create_opts(
            path,
            DiskStoreOptions {
                pool_pages: pool_capacity,
                ..DiskStoreOptions::default()
            },
        )
    }

    /// Creates a new store with explicit options.
    pub fn create_opts<P: AsRef<Path>>(
        path: P,
        opts: DiskStoreOptions,
    ) -> Result<Self, StorageError> {
        Self::create_in(Box::new(FileEnv::open(path.as_ref())?), opts)
    }

    /// Opens an existing store, recovering automatically if the last
    /// shutdown was unclean.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, StorageError> {
        Self::open_opts(path, DiskStoreOptions::default())
    }

    /// Opens with an explicit buffer-pool capacity.
    pub fn open_with_pool<P: AsRef<Path>>(
        path: P,
        pool_capacity: usize,
    ) -> Result<Self, StorageError> {
        Self::open_opts(
            path,
            DiskStoreOptions {
                pool_pages: pool_capacity,
                ..DiskStoreOptions::default()
            },
        )
    }

    /// Opens with explicit options.
    pub fn open_opts<P: AsRef<Path>>(
        path: P,
        opts: DiskStoreOptions,
    ) -> Result<Self, StorageError> {
        Self::open_in(Box::new(FileEnv::open(path.as_ref())?), opts)
    }

    /// Creates a fresh store over an arbitrary [`StorageEnv`] — the entry
    /// point of the fault-injection harness.
    pub fn create_in(
        mut env: Box<dyn StorageEnv>,
        opts: DiskStoreOptions,
    ) -> Result<Self, StorageError> {
        env.pages().set_len(0)?;
        env.pages().write_at(0, &pagefmt::stamp_page())?;
        env.pages().sync()?;
        env.wal().set_len(0)?;
        env.wal().sync()?;
        // clean = false: a writer is live from the moment of creation.
        env.store_meta(&Meta::initial().encode())?;
        let mut stats = IoStats::default();
        stats.page_writes += 1;
        Ok(Self {
            inner: Mutex::new(Inner {
                env,
                page_count: 1,
                free_head: NIL,
                dir_head: NIL,
                lsn: 0,
                wal_enabled: opts.wal,
                directory: HashMap::new(),
                pool: HashMap::new(),
                pool_capacity: opts.pool_pages.max(2),
                tick: 0,
                stats,
                recovered: false,
                telemetry: None,
            }),
        })
    }

    /// Opens a store over an arbitrary [`StorageEnv`], recovering if the
    /// meta is unclean or the WAL is non-empty.
    pub fn open_in(
        mut env: Box<dyn StorageEnv>,
        opts: DiskStoreOptions,
    ) -> Result<Self, StorageError> {
        let meta_bytes = env.load_meta()?.ok_or_else(|| {
            StorageError::Corrupt("no meta document — not a crash-safe (v2) store".into())
        })?;
        let disk_meta = Meta::decode(&meta_bytes)?;
        let mut stats = IoStats::default();
        let mut stamp = vec![0u8; PAGE_SIZE];
        env.pages()
            .read_at(0, &mut stamp)
            .map_err(|_| StorageError::Corrupt("page file too short for its stamp page".into()))?;
        stats.page_reads += 1;
        if !pagefmt::is_stamp(&stamp) {
            return Err(StorageError::Corrupt("bad stamp page".into()));
        }
        let wal_len = env.wal().len()?;
        let mut adopted = disk_meta;
        let mut recovered = false;
        if !disk_meta.clean || wal_len > 0 {
            let (pages, wal_backend) = env.pages_and_wal();
            let outcome = wal::recover(pages, wal_backend)?;
            if let Some(committed) = outcome.meta {
                // A WAL commit older than the meta is a stale remnant of
                // an interrupted truncate; the meta already covers it.
                if committed.lsn >= disk_meta.lsn {
                    adopted = committed;
                }
            }
            stats.pages_recovered += outcome.pages_applied;
            recovered = true;
            env.wal().set_len(0)?;
            env.wal().sync()?;
        }
        // Mark a writer live; flush() restores clean = true.
        adopted.clean = false;
        env.store_meta(&adopted.encode())?;
        let mut inner = Inner {
            env,
            page_count: adopted.page_count,
            free_head: adopted.free_head,
            dir_head: adopted.dir_head,
            lsn: adopted.lsn,
            wal_enabled: opts.wal,
            directory: HashMap::new(),
            pool: HashMap::new(),
            pool_capacity: opts.pool_pages.max(2),
            tick: 0,
            stats,
            recovered,
            telemetry: None,
        };
        inner.load_directory()?;
        Ok(Self {
            inner: Mutex::new(inner),
        })
    }

    /// Pages currently allocated in the backing file (stamp included).
    pub fn page_count(&self) -> u32 {
        self.inner.lock().page_count
    }

    /// Whether `open()` found an unclean store and ran recovery (even a
    /// recovery that had nothing to replay).
    pub fn recovered_on_open(&self) -> bool {
        self.inner.lock().recovered
    }

    /// Binds flush timing (`wal.append` / `wal.fsync` / `wal.checkpoint`
    /// histograms) into `registry`. Timing follows the registry's enabled
    /// switch; an unbound store reads no clocks.
    pub fn bind_telemetry(&self, registry: &Registry) {
        self.inner.lock().telemetry = Some(StorageTiming::bind(registry));
    }

    /// Full offline-style verification: every committed page re-read from
    /// the file and CRC-checked, every bucket's record stream decoded and
    /// counted against the directory. `Err` means corruption; failures
    /// also bump [`IoStats::crc_failures`].
    pub fn verify(&self) -> Result<(), StorageError> {
        self.inner.lock().verify()
    }
}

impl Inner {
    // ---- buffer pool ----------------------------------------------------

    fn touch(&mut self, page: u32) {
        self.tick += 1;
        if let Some(p) = self.pool.get_mut(&page) {
            p.last_used = self.tick;
        }
    }

    /// Evicts least-recently-used *clean* pages down to capacity. Dirty
    /// pages are pinned — they exist nowhere else until the next flush —
    /// so a pool full of dirty pages simply grows past capacity.
    fn evict_if_full(&mut self) {
        while self.pool.len() >= self.pool_capacity {
            let victim = self
                .pool
                .iter()
                .filter(|(_, p)| !p.dirty)
                .min_by_key(|(_, p)| p.last_used)
                .map(|(&n, _)| n);
            match victim {
                Some(n) => {
                    self.pool.remove(&n);
                }
                None => break,
            }
        }
    }

    fn read_page(&mut self, page: u32) -> Result<&mut CachedPage, StorageError> {
        if page == NIL || page >= self.page_count {
            return Err(StorageError::Corrupt(format!(
                "reference to page {page} outside file of {} pages",
                self.page_count
            )));
        }
        if self.pool.contains_key(&page) {
            self.stats.pool_hits += 1;
            self.touch(page);
            return self
                .pool
                .get_mut(&page)
                .ok_or_else(|| StorageError::Corrupt(format!("page {page} vanished from pool")));
        }
        self.evict_if_full();
        let mut data = vec![0u8; PAGE_SIZE];
        self.env
            .pages()
            .read_at(u64::from(page) * PAGE_SIZE as u64, &mut data)?;
        if let Err(e) = pagefmt::parse_page(&data, Some(page)) {
            self.stats.crc_failures += 1;
            return Err(e);
        }
        self.stats.page_reads += 1;
        self.tick += 1;
        let tick = self.tick;
        self.pool.insert(
            page,
            CachedPage {
                data,
                dirty: false,
                last_used: tick,
            },
        );
        self.pool
            .get_mut(&page)
            .ok_or_else(|| StorageError::Corrupt(format!("page {page} vanished from pool")))
    }

    /// Installs a fresh initialized page into the pool marked dirty (no
    /// disk read, no disk write — the page materializes at flush).
    fn fresh_page(&mut self, page: u32) -> Result<(), StorageError> {
        self.evict_if_full();
        let mut data = vec![0u8; PAGE_SIZE];
        pagefmt::init_page(&mut data, page)?;
        self.tick += 1;
        let tick = self.tick;
        self.pool.insert(
            page,
            CachedPage {
                data,
                dirty: true,
                last_used: tick,
            },
        );
        Ok(())
    }

    // ---- page allocation -------------------------------------------------

    fn alloc_page(&mut self) -> Result<u32, StorageError> {
        if self.free_head != NIL {
            let page = self.free_head;
            let next = {
                let p = self.read_page(page)?;
                pagefmt::get_next(&p.data)?
            };
            self.free_head = next;
            self.fresh_page(page)?;
            Ok(page)
        } else {
            let page = self.page_count;
            if page == u32::MAX {
                return Err(StorageError::Corrupt("page address space exhausted".into()));
            }
            self.page_count += 1;
            self.fresh_page(page)?;
            Ok(page)
        }
    }

    fn free_chain(&mut self, head: u32) -> Result<(), StorageError> {
        let mut page = head;
        let mut hops = 0u64;
        while page != NIL {
            hops += 1;
            if hops > u64::from(self.page_count) {
                return Err(StorageError::Corrupt(
                    "page chain longer than the file — cycle".into(),
                ));
            }
            let next = {
                let p = self.read_page(page)?;
                pagefmt::get_next(&p.data)?
            };
            // link into free list through the same next-pointer slot
            let free_head = self.free_head;
            let p = self.read_page(page)?;
            pagefmt::set_next(&mut p.data, free_head)?;
            pagefmt::set_used(&mut p.data, 0)?;
            p.dirty = true;
            self.free_head = page;
            page = next;
        }
        Ok(())
    }

    // ---- chain I/O -------------------------------------------------------

    /// Appends `bytes` to the chain ending at `meta.tail`, allocating pages
    /// as needed; updates `meta` in place.
    fn chain_append(&mut self, meta: &mut BucketMeta, bytes: &[u8]) -> Result<(), StorageError> {
        let mut remaining = bytes;
        if meta.head == NIL {
            let page = self.alloc_page()?;
            meta.head = page;
            meta.tail = page;
            meta.tail_used = 0;
        }
        while !remaining.is_empty() {
            let space = PAGE_CAP - usize::from(meta.tail_used);
            if space == 0 {
                let new_page = self.alloc_page()?;
                let tail = meta.tail;
                let p = self.read_page(tail)?;
                pagefmt::set_next(&mut p.data, new_page)?;
                p.dirty = true;
                meta.tail = new_page;
                meta.tail_used = 0;
                continue;
            }
            let take = space.min(remaining.len());
            let (chunk, rest) = remaining.split_at(take);
            let used = usize::from(meta.tail_used);
            let new_used = u16::try_from(used + take)
                .map_err(|_| StorageError::Corrupt("page used-bytes overflow".into()))?;
            let tail = meta.tail;
            let p = self.read_page(tail)?;
            pagefmt::put_bytes(&mut p.data, PAGE_HDR + used, chunk)?;
            pagefmt::set_used(&mut p.data, new_used)?;
            p.dirty = true;
            meta.tail_used = new_used;
            remaining = rest;
        }
        Ok(())
    }

    /// Reads the full byte stream of a chain. The hop guard turns cycles
    /// (including self-links) into typed corruption.
    fn chain_read(&mut self, head: u32) -> Result<Vec<u8>, StorageError> {
        let mut out = Vec::new();
        let mut page = head;
        let mut hops = 0u64;
        while page != NIL {
            hops += 1;
            if hops > u64::from(self.page_count) {
                return Err(StorageError::Corrupt(
                    "page chain longer than the file — cycle".into(),
                ));
            }
            let (next, chunk) = {
                let p = self.read_page(page)?;
                let next = pagefmt::get_next(&p.data)?;
                let used = usize::from(pagefmt::get_used(&p.data)?);
                if used > PAGE_CAP {
                    return Err(StorageError::Corrupt(format!(
                        "page {page} claims {used} used bytes"
                    )));
                }
                (next, get_bytes(&p.data, PAGE_HDR, used)?.to_vec())
            };
            out.extend_from_slice(&chunk);
            page = next;
        }
        Ok(out)
    }

    // ---- directory persistence -----------------------------------------

    fn load_directory(&mut self) -> Result<(), StorageError> {
        self.directory.clear();
        if self.dir_head == NIL {
            return Ok(());
        }
        let bytes = self.chain_read(self.dir_head)?;
        if bytes.len() < 4 {
            return Err(StorageError::Corrupt("directory truncated".into()));
        }
        let n = read_u32(&bytes, 0)? as usize;
        // Clamp the claimed entry count to what the chain can actually
        // hold — a corrupt count must not drive a huge loop or allocation.
        let fits = (bytes.len() - 4) / DIR_ENTRY;
        if n > fits {
            return Err(StorageError::Corrupt(format!(
                "directory claims {n} entries, chain holds at most {fits}"
            )));
        }
        let mut off = 4;
        for _ in 0..n {
            let bucket = read_u64(&bytes, off)?;
            let head = read_u32(&bytes, off + 8)?;
            let tail = read_u32(&bytes, off + 12)?;
            let tail_used = read_u16(&bytes, off + 16)?;
            let records = read_u64(&bytes, off + 18)?;
            self.directory.insert(
                BucketId(bucket),
                BucketMeta {
                    head,
                    tail,
                    tail_used,
                    records,
                },
            );
            off += DIR_ENTRY;
        }
        Ok(())
    }

    fn persist_directory(&mut self) -> Result<(), StorageError> {
        // free old chain, then write a fresh one
        let old = self.dir_head;
        self.dir_head = NIL;
        if old != NIL {
            self.free_chain(old)?;
        }
        let mut bytes = Vec::with_capacity(4 + DIR_ENTRY * self.directory.len());
        let n = u32::try_from(self.directory.len()).map_err(|_| {
            StorageError::Corrupt(format!(
                "{} buckets exceed the directory format",
                self.directory.len()
            ))
        })?;
        bytes.extend_from_slice(&n.to_le_bytes());
        let mut entries: Vec<(BucketId, BucketMeta)> =
            self.directory.iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_by_key(|(k, _)| *k);
        for (bucket, meta) in entries {
            bytes.extend_from_slice(&bucket.0.to_le_bytes());
            bytes.extend_from_slice(&meta.head.to_le_bytes());
            bytes.extend_from_slice(&meta.tail.to_le_bytes());
            bytes.extend_from_slice(&meta.tail_used.to_le_bytes());
            bytes.extend_from_slice(&meta.records.to_le_bytes());
        }
        let mut dir_meta = EMPTY_BUCKET;
        self.chain_append(&mut dir_meta, &bytes)?;
        self.dir_head = dir_meta.head;
        Ok(())
    }

    // ---- operations ------------------------------------------------------

    fn append(&mut self, bucket: BucketId, record: Record) -> Result<(), StorageError> {
        if record.payload.len() > crate::record::MAX_PAYLOAD {
            return Err(StorageError::RecordTooLarge(record.payload.len()));
        }
        let mut bytes = Vec::with_capacity(record.encoded_len());
        record.encode(&mut bytes);
        let mut meta = self.directory.get(&bucket).copied().unwrap_or(EMPTY_BUCKET);
        self.chain_append(&mut meta, &bytes)?;
        meta.records += 1;
        self.directory.insert(bucket, meta);
        self.stats.records_appended += 1;
        Ok(())
    }

    fn read_bucket(&mut self, bucket: BucketId) -> Result<Vec<Record>, StorageError> {
        let meta = *self
            .directory
            .get(&bucket)
            .ok_or(StorageError::UnknownBucket(bucket))?;
        let bytes = self.chain_read(meta.head)?;
        // Capacity clamped by what the chain can physically hold (a record
        // is at least 12 bytes) — a corrupt count must not pre-allocate.
        let cap = (meta.records as usize).min(bytes.len() / 12 + 1);
        let mut records = Vec::with_capacity(cap);
        let mut off = 0;
        while off < bytes.len() {
            let tail = bytes.get(off..).unwrap_or(&[]);
            let (r, used) = Record::decode(tail).ok_or_else(|| {
                StorageError::Corrupt(format!("bucket {bucket} record stream truncated"))
            })?;
            records.push(r);
            off += used;
        }
        if records.len() as u64 != meta.records {
            return Err(StorageError::Corrupt(format!(
                "bucket {bucket}: directory claims {} records, found {}",
                meta.records,
                records.len()
            )));
        }
        self.stats.records_read += records.len() as u64;
        Ok(records)
    }

    fn delete_bucket(&mut self, bucket: BucketId) -> Result<(), StorageError> {
        if let Some(meta) = self.directory.remove(&bucket) {
            if meta.head != NIL {
                self.free_chain(meta.head)?;
            }
        }
        Ok(())
    }

    /// The commit protocol (see the module docs for the crash analysis of
    /// each window):
    ///
    /// 1. serialize the directory into its chain (pool only);
    /// 2. seal every dirty page with the new LSN and its CRC;
    /// 3. WAL: append one page frame per dirty page plus a commit frame
    ///    carrying the new meta, then fsync — **the commit point**;
    /// 4. checkpoint the sealed pages in place, fsync the page file;
    /// 5. atomically replace the meta with `clean = 1`;
    /// 6. truncate + fsync the WAL.
    fn flush(&mut self) -> Result<(), StorageError> {
        self.persist_directory()?;
        let next_lsn = self.lsn + 1;
        let mut dirty: Vec<u32> = self
            .pool
            .iter()
            .filter(|(_, p)| p.dirty)
            .map(|(&n, _)| n)
            .collect();
        dirty.sort_unstable();
        for &page in &dirty {
            let p = self
                .pool
                .get_mut(&page)
                .ok_or_else(|| StorageError::Corrupt(format!("page {page} vanished from pool")))?;
            pagefmt::seal_page(&mut p.data, next_lsn)?;
        }
        let new_meta = Meta {
            lsn: next_lsn,
            page_count: self.page_count,
            free_head: self.free_head,
            dir_head: self.dir_head,
            clean: false,
        };
        if self.wal_enabled {
            let timing = self.telemetry.clone();
            {
                let _append = timing.as_ref().map(StorageTiming::wal_append_timer);
                let wal_backend = self.env.wal();
                let mut off = 0u64;
                for &page in &dirty {
                    let image = self.pool.get(&page).ok_or_else(|| {
                        StorageError::Corrupt(format!("page {page} vanished from pool"))
                    })?;
                    off = wal::append_page_frame(
                        &mut *wal_backend,
                        off,
                        next_lsn,
                        page,
                        &image.data,
                    )?;
                    self.stats.wal_appends += 1;
                }
                wal::append_commit_frame(&mut *wal_backend, off, next_lsn, &new_meta.encode())?;
                self.stats.wal_appends += 1;
            }
            // The batch is durable from here: any later crash replays it.
            let _fsync = timing.as_ref().map(StorageTiming::wal_fsync_timer);
            self.env.wal().sync()?;
        }
        {
            let timing = self.telemetry.clone();
            let _checkpoint = timing.as_ref().map(StorageTiming::checkpoint_timer);
            {
                let pages_backend = self.env.pages();
                for &page in &dirty {
                    let image = self.pool.get(&page).ok_or_else(|| {
                        StorageError::Corrupt(format!("page {page} vanished from pool"))
                    })?;
                    pages_backend.write_at(u64::from(page) * PAGE_SIZE as u64, &image.data)?;
                    self.stats.page_writes += 1;
                }
                // Data pages reach the platter before any pointer to them is
                // published — the pre-WAL flush-ordering hazard is gone.
                pages_backend.sync()?;
            }
            self.env.store_meta(
                &Meta {
                    clean: true,
                    ..new_meta
                }
                .encode(),
            )?;
            if self.wal_enabled {
                self.env.wal().set_len(0)?;
                self.env.wal().sync()?;
            }
        }
        for &page in &dirty {
            if let Some(p) = self.pool.get_mut(&page) {
                p.dirty = false;
            }
        }
        self.lsn = next_lsn;
        Ok(())
    }

    fn verify(&mut self) -> Result<(), StorageError> {
        let mut buf = vec![0u8; PAGE_SIZE];
        self.env.pages().read_at(0, &mut buf)?;
        if !pagefmt::is_stamp(&buf) {
            self.stats.crc_failures += 1;
            return Err(StorageError::Corrupt("bad stamp page".into()));
        }
        for page in 1..self.page_count {
            self.env
                .pages()
                .read_at(u64::from(page) * PAGE_SIZE as u64, &mut buf)?;
            if let Err(e) = pagefmt::parse_page(&buf, Some(page)) {
                self.stats.crc_failures += 1;
                return Err(e);
            }
        }
        let buckets: Vec<(BucketId, BucketMeta)> =
            self.directory.iter().map(|(k, v)| (*k, *v)).collect();
        for (bucket, meta) in buckets {
            let bytes = self.chain_read(meta.head)?;
            let mut off = 0;
            let mut seen = 0u64;
            while off < bytes.len() {
                let tail = bytes.get(off..).unwrap_or(&[]);
                let Some((_, _, used)) = Record::peek(tail) else {
                    return Err(StorageError::Corrupt(format!(
                        "bucket {bucket} record stream truncated"
                    )));
                };
                seen += 1;
                off += used;
            }
            if seen != meta.records {
                return Err(StorageError::Corrupt(format!(
                    "bucket {bucket}: directory claims {} records, found {seen}",
                    meta.records
                )));
            }
        }
        Ok(())
    }
}

impl BucketStore for DiskStore {
    fn append(&mut self, bucket: BucketId, record: Record) -> Result<(), StorageError> {
        self.inner.get_mut().append(bucket, record)
    }

    fn read_bucket(&self, bucket: BucketId) -> Result<Vec<Record>, StorageError> {
        self.inner.lock().read_bucket(bucket)
    }

    fn read_matching(
        &self,
        bucket: BucketId,
        wanted: &dyn Fn(u64) -> bool,
    ) -> Result<Vec<Record>, StorageError> {
        // Pull the raw chain bytes under the latch, then filter and decode
        // *outside* it: record parsing and the payload copies for wanted
        // records are pure CPU work on a private buffer, and the trait's
        // default path would additionally clone every unwanted payload in
        // the bucket (via `read_bucket`) while holding nothing back.
        let (bytes, expected) = {
            let mut inner = self.inner.lock();
            let meta = *inner
                .directory
                .get(&bucket)
                .ok_or(StorageError::UnknownBucket(bucket))?;
            (inner.chain_read(meta.head)?, meta.records)
        };
        let mut out = Vec::new();
        let mut seen = 0u64;
        let mut off = 0;
        while off < bytes.len() {
            let tail = bytes.get(off..).unwrap_or(&[]);
            let (id, payload_off, used) = Record::peek(tail).ok_or_else(|| {
                StorageError::Corrupt(format!("bucket {bucket} record stream truncated"))
            })?;
            if wanted(id) {
                let payload = get_bytes(tail, payload_off, used - payload_off)?.to_vec();
                out.push(Record::new(id, payload));
            }
            seen += 1;
            off += used;
        }
        if seen != expected {
            return Err(StorageError::Corrupt(format!(
                "bucket {bucket}: directory claims {expected} records, found {seen}"
            )));
        }
        // Consistent with MemoryStore: only materialized records count as
        // read back (the id scan never touches the other payloads).
        self.inner.lock().stats.records_read += out.len() as u64;
        Ok(out)
    }

    fn bucket_len(&self, bucket: BucketId) -> usize {
        self.inner
            .lock()
            .directory
            .get(&bucket)
            .map_or(0, |m| m.records as usize)
    }

    fn delete_bucket(&mut self, bucket: BucketId) -> Result<(), StorageError> {
        self.inner.get_mut().delete_bucket(bucket)
    }

    fn bucket_ids(&self) -> Vec<BucketId> {
        self.inner.lock().directory.keys().copied().collect()
    }

    fn total_records(&self) -> u64 {
        self.inner
            .lock()
            .directory
            .values()
            .map(|m| m.records)
            .sum()
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        self.inner.get_mut().flush()
    }

    fn stats(&self) -> IoStats {
        self.inner.lock().stats
    }

    fn backend_name(&self) -> &'static str {
        "Disk storage"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{CrashMode, FaultEnv, FaultPlan};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("simcloud-storage-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.db", std::process::id()))
    }

    fn cleanup(path: &std::path::Path) {
        let _ = std::fs::remove_file(path);
        FileEnv::remove_sidecars(path);
    }

    fn rec(id: u64, len: usize) -> Record {
        Record::new(
            id,
            (0..len).map(|i| ((id as usize + i) % 256) as u8).collect(),
        )
    }

    #[test]
    fn create_append_read() {
        let path = tmp("basic");
        let mut s = DiskStore::create(&path).unwrap();
        s.append(BucketId(1), rec(1, 100)).unwrap();
        s.append(BucketId(1), rec(2, 50)).unwrap();
        s.append(BucketId(2), rec(3, 10)).unwrap();
        let b1 = s.read_bucket(BucketId(1)).unwrap();
        assert_eq!(b1, vec![rec(1, 100), rec(2, 50)]);
        assert_eq!(s.bucket_len(BucketId(2)), 1);
        assert_eq!(s.total_records(), 3);
        let only2 = s.read_matching(BucketId(1), &|id| id == 2).unwrap();
        assert_eq!(only2, vec![rec(2, 50)]);
        cleanup(&path);
    }

    /// The targeted read materializes only wanted records — including when
    /// records span page boundaries — counts only those as read back, and
    /// keeps the full-scan corruption checks.
    #[test]
    fn read_matching_filters_before_materializing() {
        let path = tmp("matching");
        let mut s = DiskStore::create(&path).unwrap();
        // 3000-byte payloads span pages, so the filter must walk the raw
        // chain stream, not per-page record boundaries.
        for i in 0..10u64 {
            s.append(BucketId(7), rec(i, 3000)).unwrap();
        }
        let read_before = s.stats().records_read;
        let got = s
            .read_matching(BucketId(7), &|id| id == 3 || id == 8)
            .unwrap();
        assert_eq!(got, vec![rec(3, 3000), rec(8, 3000)]);
        assert_eq!(
            s.stats().records_read - read_before,
            2,
            "unwanted records are skipped, not counted as read"
        );
        assert!(s.read_matching(BucketId(7), &|_| false).unwrap().is_empty());
        assert!(matches!(
            s.read_matching(BucketId(99), &|_| true),
            Err(StorageError::UnknownBucket(_))
        ));
        cleanup(&path);
    }

    #[test]
    fn records_spanning_pages() {
        let path = tmp("span");
        let mut s = DiskStore::create(&path).unwrap();
        // Payloads bigger than one page must span the chain.
        for i in 0..10u64 {
            s.append(BucketId(7), rec(i, 3000)).unwrap();
        }
        let back = s.read_bucket(BucketId(7)).unwrap();
        assert_eq!(back.len(), 10);
        for (i, r) in back.iter().enumerate() {
            assert_eq!(*r, rec(i as u64, 3000));
        }
        cleanup(&path);
    }

    #[test]
    fn flush_and_reopen_preserves_data() {
        let path = tmp("reopen");
        {
            let mut s = DiskStore::create(&path).unwrap();
            for b in 0..5u64 {
                for i in 0..20u64 {
                    s.append(BucketId(b), rec(b * 100 + i, 200)).unwrap();
                }
            }
            s.flush().unwrap();
        }
        {
            let mut s = DiskStore::open(&path).unwrap();
            assert!(!s.recovered_on_open(), "clean store must not recover");
            assert_eq!(s.total_records(), 100);
            let mut ids = s.bucket_ids();
            ids.sort();
            assert_eq!(ids, (0..5).map(BucketId).collect::<Vec<_>>());
            let b3 = s.read_bucket(BucketId(3)).unwrap();
            assert_eq!(b3.len(), 20);
            assert_eq!(b3[0], rec(300, 200));
            s.verify().unwrap();
            // store remains writable after reopen
            s.append(BucketId(3), rec(999, 10)).unwrap();
            assert_eq!(s.bucket_len(BucketId(3)), 21);
        }
        cleanup(&path);
    }

    #[test]
    fn delete_bucket_recycles_pages() {
        let path = tmp("recycle");
        let mut s = DiskStore::create(&path).unwrap();
        for i in 0..50u64 {
            s.append(BucketId(1), rec(i, 1000)).unwrap();
        }
        s.flush().unwrap();
        let pages_before = s.page_count();
        s.delete_bucket(BucketId(1)).unwrap();
        // Rewriting similar volume should not grow the file (free list reuse).
        for i in 0..50u64 {
            s.append(BucketId(2), rec(i, 1000)).unwrap();
        }
        assert!(
            s.page_count() <= pages_before + 2,
            "pages grew {} -> {} despite free list",
            pages_before,
            s.page_count()
        );
        assert!(s.read_bucket(BucketId(1)).is_err());
        assert_eq!(s.bucket_len(BucketId(2)), 50);
        s.flush().unwrap();
        s.verify().unwrap();
        cleanup(&path);
    }

    #[test]
    fn small_pool_still_correct() {
        let path = tmp("smallpool");
        let mut s = DiskStore::create_with_pool(&path, 2).unwrap();
        for b in 0..8u64 {
            for i in 0..10u64 {
                s.append(BucketId(b), rec(b * 10 + i, 500)).unwrap();
            }
            // Commit per bucket so clean pages become evictable and the
            // tiny pool actually exercises misses.
            s.flush().unwrap();
        }
        for b in 0..8u64 {
            let recs = s.read_bucket(BucketId(b)).unwrap();
            assert_eq!(recs.len(), 10, "bucket {b}");
            for (i, r) in recs.iter().enumerate() {
                assert_eq!(*r, rec(b * 10 + i as u64, 500));
            }
        }
        let st = s.stats();
        assert!(st.page_reads > 0, "tiny pool must miss");
        assert!(st.page_writes > 0);
        cleanup(&path);
    }

    #[test]
    fn open_rejects_garbage() {
        let path = tmp("garbage");
        cleanup(&path);
        std::fs::write(&path, vec![0u8; PAGE_SIZE]).unwrap();
        match DiskStore::open(&path) {
            Err(StorageError::Corrupt(msg)) => assert!(msg.contains("meta")),
            other => panic!("expected corrupt error, got {other:?}"),
        }
        cleanup(&path);
    }

    #[test]
    fn empty_store_flush_reopen() {
        let path = tmp("empty");
        {
            let mut s = DiskStore::create(&path).unwrap();
            s.flush().unwrap();
        }
        let s = DiskStore::open(&path).unwrap();
        assert_eq!(s.total_records(), 0);
        assert!(s.bucket_ids().is_empty());
        assert_eq!(s.backend_name(), "Disk storage");
        s.verify().unwrap();
        cleanup(&path);
    }

    #[test]
    fn pool_hits_are_counted() {
        let path = tmp("poolhits");
        let mut s = DiskStore::create(&path).unwrap();
        s.append(BucketId(1), rec(1, 10)).unwrap();
        let _ = s.read_bucket(BucketId(1)).unwrap();
        let _ = s.read_bucket(BucketId(1)).unwrap();
        assert!(s.stats().pool_hits > 0);
        cleanup(&path);
    }

    #[test]
    fn unclean_open_reports_recovery() {
        let path = tmp("unclean");
        {
            let mut s = DiskStore::create(&path).unwrap();
            s.append(BucketId(1), rec(1, 10)).unwrap();
            s.flush().unwrap();
            s.append(BucketId(1), rec(2, 10)).unwrap();
            // Dropped without a second flush: the on-disk meta was last
            // written by flush() with clean = true, and the unflushed
            // append never touched the file — so reopen must NOT recover.
        }
        {
            let s = DiskStore::open(&path).unwrap();
            assert!(!s.recovered_on_open());
            assert_eq!(s.total_records(), 1, "unflushed append is lost");
        }
        // Now an open that never flushes leaves clean = false behind.
        {
            let _s = DiskStore::open(&path).unwrap();
        }
        {
            let s = DiskStore::open(&path).unwrap();
            assert!(
                s.recovered_on_open(),
                "meta says writer was live — recovery must run"
            );
            assert_eq!(s.stats().pages_recovered, 0, "nothing to replay");
            assert_eq!(s.total_records(), 1);
            s.verify().unwrap();
        }
        cleanup(&path);
    }

    #[test]
    fn wal_off_store_works_and_skips_the_log() {
        let path = tmp("waloff");
        let opts = DiskStoreOptions {
            wal: false,
            ..DiskStoreOptions::default()
        };
        {
            let mut s = DiskStore::create_opts(&path, opts).unwrap();
            for i in 0..30u64 {
                s.append(BucketId(1), rec(i, 400)).unwrap();
            }
            s.flush().unwrap();
            assert_eq!(s.stats().wal_appends, 0);
        }
        {
            let s = DiskStore::open_opts(&path, opts).unwrap();
            assert_eq!(s.total_records(), 30);
            s.verify().unwrap();
        }
        cleanup(&path);
    }

    #[test]
    fn fault_env_store_round_trips() {
        let mut s = DiskStore::create_in(
            Box::new(FaultEnv::new(FaultPlan::default())),
            DiskStoreOptions::default(),
        )
        .unwrap();
        for i in 0..20u64 {
            s.append(BucketId(i % 3), rec(i, 777)).unwrap();
        }
        s.flush().unwrap();
        s.verify().unwrap();
        assert_eq!(s.total_records(), 20);
        assert!(s.stats().wal_appends > 0);
    }

    #[test]
    fn reopen_after_crash_recovers_last_flush() {
        // Run a schedule against a fault env, crash after the WAL commit
        // but before the checkpoint finishes, and reopen over what
        // survives: the flushed state must be fully there.
        let env = FaultEnv::new(FaultPlan::default());
        let handle = env.handle();
        let mut s = DiskStore::create_in(Box::new(env), DiskStoreOptions::default()).unwrap();
        for i in 0..10u64 {
            s.append(BucketId(1), rec(i, 600)).unwrap();
        }
        s.flush().unwrap();
        let ops_after_flush = handle.ops();
        drop(s);

        // Replay the same schedule, crashing mid-checkpoint (a few ops
        // after the WAL sync that `flush` performs).
        let plan = FaultPlan {
            crash_at: Some(ops_after_flush - 2),
            mode: CrashMode::DropUnsynced,
            flip: None,
        };
        let env = FaultEnv::new(plan);
        let handle = env.handle();
        let mut s = DiskStore::create_in(Box::new(env), DiskStoreOptions::default()).unwrap();
        for i in 0..10u64 {
            s.append(BucketId(1), rec(i, 600)).unwrap();
        }
        let flush_result = s.flush();
        assert!(flush_result.is_err(), "crash must surface as an error");
        drop(s);

        let image = handle.surviving();
        let reopened = DiskStore::open_in(
            Box::new(FaultEnv::from_images(image, FaultPlan::default())),
            DiskStoreOptions::default(),
        )
        .unwrap();
        assert!(reopened.recovered_on_open());
        reopened.verify().unwrap();
        assert_eq!(reopened.total_records(), 10);
        assert_eq!(reopened.read_bucket(BucketId(1)).unwrap().len(), 10);
    }
}
