//! Single-file paged bucket store — the paper's "Disk storage" (Table 2,
//! CoPhIR configuration).
//!
//! Layout: a file of 4 KiB pages. Page 0 is the header (magic, version,
//! page count, free-list head, directory chain head). Every other page is
//! either on the free list or part of a chain: bucket chains carry record
//! bytes, the directory chain persists the bucket table on flush.
//!
//! ```text
//! page 0   : "SCLDSTOR" | version u32 | page_count u32 | free_head u32 | dir_head u32
//! data page: next u32 | used u16 | payload bytes (PAGE_CAP = 4090)
//! ```
//!
//! A small LRU buffer pool fronts the file; all reads/writes go through it
//! and its hit/miss counts feed [`IoStats`], which the benches report as the
//! server-side I/O component.
//!
//! Concurrency model: the file, directory and buffer pool live behind one
//! [`parking_lot::Mutex`] — the disk model's latch. `&self` reads from many
//! query threads are therefore *safe* but serialized at the device, exactly
//! like a single spindle/buffer pool; the in-memory store is the backend
//! that scales reads with threads.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use parking_lot::Mutex;

use crate::{BucketId, BucketStore, IoStats, Record, StorageError};

const MAGIC: &[u8; 8] = b"SCLDSTOR";
const VERSION: u32 = 1;
/// Page size in bytes.
pub const PAGE_SIZE: usize = 4096;
const PAGE_HDR: usize = 6; // next: u32, used: u16
const PAGE_CAP: usize = PAGE_SIZE - PAGE_HDR;
const NIL: u32 = 0;

#[derive(Clone)]
struct CachedPage {
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    last_used: u64,
}

#[derive(Debug, Clone, Copy)]
struct BucketMeta {
    head: u32,
    tail: u32,
    /// bytes used in the tail page (cached to avoid a read on append)
    tail_used: u16,
    records: u64,
}

/// The mutable paged state: file, directory, buffer pool, statistics.
/// One mutex guards all of it (see the module docs).
struct Inner {
    file: File,
    page_count: u32,
    free_head: u32,
    dir_head: u32,
    directory: HashMap<BucketId, BucketMeta>,
    pool: HashMap<u32, CachedPage>,
    pool_capacity: usize,
    tick: u64,
    stats: IoStats,
}

/// Paged single-file bucket store with an LRU buffer pool.
pub struct DiskStore {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for DiskStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("DiskStore")
            .field("pages", &inner.page_count)
            .field("buckets", &inner.directory.len())
            .field("pool", &inner.pool.len())
            .finish()
    }
}

impl DiskStore {
    /// Creates a new store file (truncating any existing content) with the
    /// default 1024-page (4 MiB) buffer pool.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self, StorageError> {
        Self::create_with_pool(path, 1024)
    }

    /// Creates a new store with an explicit buffer-pool capacity in pages.
    pub fn create_with_pool<P: AsRef<Path>>(
        path: P,
        pool_capacity: usize,
    ) -> Result<Self, StorageError> {
        assert!(pool_capacity >= 2, "pool must hold at least two pages");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut inner = Inner {
            file,
            page_count: 1,
            free_head: NIL,
            dir_head: NIL,
            directory: HashMap::new(),
            pool: HashMap::new(),
            pool_capacity,
            tick: 0,
            stats: IoStats::default(),
        };
        inner.write_header()?;
        Ok(Self {
            inner: Mutex::new(inner),
        })
    }

    /// Opens an existing store file and loads its directory.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, StorageError> {
        Self::open_with_pool(path, 1024)
    }

    /// Opens with an explicit buffer-pool capacity.
    pub fn open_with_pool<P: AsRef<Path>>(
        path: P,
        pool_capacity: usize,
    ) -> Result<Self, StorageError> {
        assert!(pool_capacity >= 2, "pool must hold at least two pages");
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut hdr = [0u8; PAGE_SIZE];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut hdr)?;
        if &hdr[0..8] != MAGIC {
            return Err(StorageError::Corrupt("bad magic".into()));
        }
        let version = read_u32_at(&hdr, 8)?;
        if version != VERSION {
            return Err(StorageError::Corrupt(format!(
                "unsupported version {version}"
            )));
        }
        let page_count = read_u32_at(&hdr, 12)?;
        let free_head = read_u32_at(&hdr, 16)?;
        let dir_head = read_u32_at(&hdr, 20)?;
        let mut inner = Inner {
            file,
            page_count,
            free_head,
            dir_head,
            directory: HashMap::new(),
            pool: HashMap::new(),
            pool_capacity,
            tick: 0,
            stats: IoStats::default(),
        };
        inner.load_directory()?;
        Ok(Self {
            inner: Mutex::new(inner),
        })
    }

    /// Pages currently allocated in the backing file (header included).
    pub fn page_count(&self) -> u32 {
        self.inner.lock().page_count
    }
}

/// Reads a little-endian `u32` at `off`, or reports corruption — header and
/// page parsing must surface truncated files as [`StorageError::Corrupt`],
/// never a panic.
fn read_u32_at(bytes: &[u8], off: usize) -> Result<u32, StorageError> {
    bytes
        .get(off..off.saturating_add(4))
        .and_then(|s| s.try_into().ok())
        .map(u32::from_le_bytes)
        .ok_or_else(|| StorageError::Corrupt(format!("truncated u32 at byte {off}")))
}

/// Reads a little-endian `u16` at `off` (see [`read_u32_at`]).
fn read_u16_at(bytes: &[u8], off: usize) -> Result<u16, StorageError> {
    bytes
        .get(off..off.saturating_add(2))
        .and_then(|s| s.try_into().ok())
        .map(u16::from_le_bytes)
        .ok_or_else(|| StorageError::Corrupt(format!("truncated u16 at byte {off}")))
}

/// Reads a little-endian `u64` at `off` (see [`read_u32_at`]).
fn read_u64_at(bytes: &[u8], off: usize) -> Result<u64, StorageError> {
    bytes
        .get(off..off.saturating_add(8))
        .and_then(|s| s.try_into().ok())
        .map(u64::from_le_bytes)
        .ok_or_else(|| StorageError::Corrupt(format!("truncated u64 at byte {off}")))
}

impl Inner {
    fn write_header(&mut self) -> Result<(), StorageError> {
        let mut hdr = [0u8; PAGE_SIZE];
        hdr[0..8].copy_from_slice(MAGIC);
        hdr[8..12].copy_from_slice(&VERSION.to_le_bytes());
        hdr[12..16].copy_from_slice(&self.page_count.to_le_bytes());
        hdr[16..20].copy_from_slice(&self.free_head.to_le_bytes());
        hdr[20..24].copy_from_slice(&self.dir_head.to_le_bytes());
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&hdr)?;
        self.stats.page_writes += 1;
        Ok(())
    }

    // ---- buffer pool ----------------------------------------------------

    fn touch(&mut self, page: u32) {
        self.tick += 1;
        if let Some(p) = self.pool.get_mut(&page) {
            p.last_used = self.tick;
        }
    }

    fn evict_if_full(&mut self) -> Result<(), StorageError> {
        while self.pool.len() >= self.pool_capacity {
            // The loop condition keeps the pool non-empty (capacity >= 2),
            // so a missing victim just means there is nothing to evict.
            let Some(victim) = self
                .pool
                .iter()
                .min_by_key(|(_, p)| p.last_used)
                .map(|(&n, _)| n)
            else {
                break;
            };
            let Some(page) = self.pool.remove(&victim) else {
                break;
            };
            if page.dirty {
                self.file
                    .seek(SeekFrom::Start(victim as u64 * PAGE_SIZE as u64))?;
                self.file.write_all(&page.data[..])?;
                self.stats.page_writes += 1;
            }
        }
        Ok(())
    }

    fn read_page(&mut self, page: u32) -> Result<&mut CachedPage, StorageError> {
        debug_assert_ne!(page, NIL, "attempt to read nil page");
        if self.pool.contains_key(&page) {
            self.stats.pool_hits += 1;
            self.touch(page);
            return self
                .pool
                .get_mut(&page)
                .ok_or_else(|| StorageError::Corrupt(format!("page {page} vanished from pool")));
        }
        self.evict_if_full()?;
        let mut data = Box::new([0u8; PAGE_SIZE]);
        self.file
            .seek(SeekFrom::Start(page as u64 * PAGE_SIZE as u64))?;
        self.file.read_exact(&mut data[..])?;
        self.stats.page_reads += 1;
        self.tick += 1;
        let tick = self.tick;
        self.pool.insert(
            page,
            CachedPage {
                data,
                dirty: false,
                last_used: tick,
            },
        );
        self.pool
            .get_mut(&page)
            .ok_or_else(|| StorageError::Corrupt(format!("page {page} vanished from pool")))
    }

    /// Installs a fresh zeroed page into the pool marked dirty (no disk read).
    fn fresh_page(&mut self, page: u32) -> Result<(), StorageError> {
        self.evict_if_full()?;
        self.tick += 1;
        let tick = self.tick;
        self.pool.insert(
            page,
            CachedPage {
                data: Box::new([0u8; PAGE_SIZE]),
                dirty: true,
                last_used: tick,
            },
        );
        Ok(())
    }

    // ---- page allocation -------------------------------------------------

    fn alloc_page(&mut self) -> Result<u32, StorageError> {
        if self.free_head != NIL {
            let page = self.free_head;
            let next = {
                let p = self.read_page(page)?;
                read_u32_at(&p.data[..], 0)?
            };
            self.free_head = next;
            self.fresh_page(page)?;
            Ok(page)
        } else {
            let page = self.page_count;
            self.page_count += 1;
            // extend the file so read_exact on eviction-reload succeeds
            self.file
                .seek(SeekFrom::Start(page as u64 * PAGE_SIZE as u64))?;
            self.file.write_all(&[0u8; PAGE_SIZE])?;
            self.stats.page_writes += 1;
            self.fresh_page(page)?;
            Ok(page)
        }
    }

    fn free_chain(&mut self, head: u32) -> Result<(), StorageError> {
        let mut page = head;
        while page != NIL {
            let next = {
                let p = self.read_page(page)?;
                read_u32_at(&p.data[..], 0)?
            };
            // link into free list through the same next-pointer slot
            let free_head = self.free_head;
            let p = self.read_page(page)?;
            p.data[0..4].copy_from_slice(&free_head.to_le_bytes());
            p.data[4..6].copy_from_slice(&0u16.to_le_bytes());
            p.dirty = true;
            self.free_head = page;
            page = next;
        }
        Ok(())
    }

    // ---- chain I/O ---------------------------------------------------------

    /// Appends `bytes` to the chain ending at `meta.tail`, allocating pages
    /// as needed; updates `meta` in place.
    fn chain_append(&mut self, meta: &mut BucketMeta, bytes: &[u8]) -> Result<(), StorageError> {
        let mut remaining = bytes;
        if meta.head == NIL {
            let page = self.alloc_page()?;
            meta.head = page;
            meta.tail = page;
            meta.tail_used = 0;
        }
        while !remaining.is_empty() {
            let space = PAGE_CAP - meta.tail_used as usize;
            if space == 0 {
                let new_page = self.alloc_page()?;
                let tail = meta.tail;
                let p = self.read_page(tail)?;
                p.data[0..4].copy_from_slice(&new_page.to_le_bytes());
                p.dirty = true;
                meta.tail = new_page;
                meta.tail_used = 0;
                continue;
            }
            let take = space.min(remaining.len());
            let tail = meta.tail;
            let used = meta.tail_used as usize;
            let p = self.read_page(tail)?;
            p.data[PAGE_HDR + used..PAGE_HDR + used + take].copy_from_slice(&remaining[..take]);
            let new_used = (used + take) as u16;
            p.data[4..6].copy_from_slice(&new_used.to_le_bytes());
            p.dirty = true;
            meta.tail_used = new_used;
            remaining = &remaining[take..];
        }
        Ok(())
    }

    /// Reads the full byte stream of a chain.
    fn chain_read(&mut self, head: u32) -> Result<Vec<u8>, StorageError> {
        let mut out = Vec::new();
        let mut page = head;
        while page != NIL {
            let (next, chunk) = {
                let p = self.read_page(page)?;
                let next = read_u32_at(&p.data[..], 0)?;
                let used = read_u16_at(&p.data[..], 4)? as usize;
                if used > PAGE_CAP {
                    return Err(StorageError::Corrupt(format!(
                        "page {page} claims {used} used bytes"
                    )));
                }
                (next, p.data[PAGE_HDR..PAGE_HDR + used].to_vec())
            };
            out.extend_from_slice(&chunk);
            if next == page {
                return Err(StorageError::Corrupt(format!(
                    "page {page} links to itself"
                )));
            }
            page = next;
        }
        Ok(out)
    }

    // ---- directory persistence -----------------------------------------

    fn load_directory(&mut self) -> Result<(), StorageError> {
        self.directory.clear();
        if self.dir_head == NIL {
            return Ok(());
        }
        let bytes = self.chain_read(self.dir_head)?;
        if bytes.len() < 4 {
            return Err(StorageError::Corrupt("directory truncated".into()));
        }
        let n = read_u32_at(&bytes, 0)? as usize;
        let mut off = 4;
        for _ in 0..n {
            if bytes.len() < off + 26 {
                return Err(StorageError::Corrupt("directory entry truncated".into()));
            }
            let bucket = read_u64_at(&bytes, off)?;
            let head = read_u32_at(&bytes, off + 8)?;
            let tail = read_u32_at(&bytes, off + 12)?;
            let tail_used = read_u16_at(&bytes, off + 16)?;
            let records = read_u64_at(&bytes, off + 18)?;
            self.directory.insert(
                BucketId(bucket),
                BucketMeta {
                    head,
                    tail,
                    tail_used,
                    records,
                },
            );
            off += 26;
        }
        Ok(())
    }

    fn persist_directory(&mut self) -> Result<(), StorageError> {
        // free old chain, then write a fresh one
        let old = self.dir_head;
        self.dir_head = NIL;
        if old != NIL {
            self.free_chain(old)?;
        }
        let mut bytes = Vec::with_capacity(4 + 26 * self.directory.len());
        bytes.extend_from_slice(&(self.directory.len() as u32).to_le_bytes());
        let mut entries: Vec<(BucketId, BucketMeta)> =
            self.directory.iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_by_key(|(k, _)| *k);
        for (bucket, meta) in entries {
            bytes.extend_from_slice(&bucket.0.to_le_bytes());
            bytes.extend_from_slice(&meta.head.to_le_bytes());
            bytes.extend_from_slice(&meta.tail.to_le_bytes());
            bytes.extend_from_slice(&meta.tail_used.to_le_bytes());
            bytes.extend_from_slice(&meta.records.to_le_bytes());
        }
        let mut dir_meta = BucketMeta {
            head: NIL,
            tail: NIL,
            tail_used: 0,
            records: 0,
        };
        self.chain_append(&mut dir_meta, &bytes)?;
        self.dir_head = dir_meta.head;
        Ok(())
    }
}

impl Inner {
    fn append(&mut self, bucket: BucketId, record: Record) -> Result<(), StorageError> {
        if record.payload.len() > crate::record::MAX_PAYLOAD {
            return Err(StorageError::RecordTooLarge(record.payload.len()));
        }
        let mut bytes = Vec::with_capacity(record.encoded_len());
        record.encode(&mut bytes);
        let mut meta = self.directory.get(&bucket).copied().unwrap_or(BucketMeta {
            head: NIL,
            tail: NIL,
            tail_used: 0,
            records: 0,
        });
        self.chain_append(&mut meta, &bytes)?;
        meta.records += 1;
        self.directory.insert(bucket, meta);
        self.stats.records_appended += 1;
        Ok(())
    }

    fn read_bucket(&mut self, bucket: BucketId) -> Result<Vec<Record>, StorageError> {
        let meta = *self
            .directory
            .get(&bucket)
            .ok_or(StorageError::UnknownBucket(bucket))?;
        let bytes = self.chain_read(meta.head)?;
        let mut records = Vec::with_capacity(meta.records as usize);
        let mut off = 0;
        while off < bytes.len() {
            let (r, used) = Record::decode(&bytes[off..]).ok_or_else(|| {
                StorageError::Corrupt(format!("bucket {bucket} record stream truncated"))
            })?;
            records.push(r);
            off += used;
        }
        if records.len() as u64 != meta.records {
            return Err(StorageError::Corrupt(format!(
                "bucket {bucket}: directory claims {} records, found {}",
                meta.records,
                records.len()
            )));
        }
        self.stats.records_read += records.len() as u64;
        Ok(records)
    }

    fn delete_bucket(&mut self, bucket: BucketId) -> Result<(), StorageError> {
        if let Some(meta) = self.directory.remove(&bucket) {
            if meta.head != NIL {
                self.free_chain(meta.head)?;
            }
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        self.persist_directory()?;
        // write all dirty pages
        let dirty: Vec<u32> = self
            .pool
            .iter()
            .filter(|(_, p)| p.dirty)
            .map(|(&n, _)| n)
            .collect();
        for page in dirty {
            let Some(data) = self.pool.get(&page).map(|p| p.data.clone()) else {
                continue;
            };
            self.file
                .seek(SeekFrom::Start(page as u64 * PAGE_SIZE as u64))?;
            self.file.write_all(&data[..])?;
            self.stats.page_writes += 1;
            if let Some(p) = self.pool.get_mut(&page) {
                p.dirty = false;
            }
        }
        self.write_header()?;
        self.file.sync_data()?;
        Ok(())
    }
}

impl BucketStore for DiskStore {
    fn append(&mut self, bucket: BucketId, record: Record) -> Result<(), StorageError> {
        self.inner.get_mut().append(bucket, record)
    }

    fn read_bucket(&self, bucket: BucketId) -> Result<Vec<Record>, StorageError> {
        self.inner.lock().read_bucket(bucket)
    }

    fn read_matching(
        &self,
        bucket: BucketId,
        wanted: &dyn Fn(u64) -> bool,
    ) -> Result<Vec<Record>, StorageError> {
        // Pull the raw chain bytes under the latch, then filter and decode
        // *outside* it: record parsing and the payload copies for wanted
        // records are pure CPU work on a private buffer, and the trait's
        // default path would additionally clone every unwanted payload in
        // the bucket (via `read_bucket`) while holding nothing back.
        let (bytes, expected) = {
            let mut inner = self.inner.lock();
            let meta = *inner
                .directory
                .get(&bucket)
                .ok_or(StorageError::UnknownBucket(bucket))?;
            (inner.chain_read(meta.head)?, meta.records)
        };
        let mut out = Vec::new();
        let mut seen = 0u64;
        let mut off = 0;
        while off < bytes.len() {
            let (id, payload_off, used) = Record::peek(&bytes[off..]).ok_or_else(|| {
                StorageError::Corrupt(format!("bucket {bucket} record stream truncated"))
            })?;
            if wanted(id) {
                out.push(Record::new(
                    id,
                    bytes[off + payload_off..off + used].to_vec(),
                ));
            }
            seen += 1;
            off += used;
        }
        if seen != expected {
            return Err(StorageError::Corrupt(format!(
                "bucket {bucket}: directory claims {expected} records, found {seen}"
            )));
        }
        // Consistent with MemoryStore: only materialized records count as
        // read back (the id scan never touches the other payloads).
        self.inner.lock().stats.records_read += out.len() as u64;
        Ok(out)
    }

    fn bucket_len(&self, bucket: BucketId) -> usize {
        self.inner
            .lock()
            .directory
            .get(&bucket)
            .map_or(0, |m| m.records as usize)
    }

    fn delete_bucket(&mut self, bucket: BucketId) -> Result<(), StorageError> {
        self.inner.get_mut().delete_bucket(bucket)
    }

    fn bucket_ids(&self) -> Vec<BucketId> {
        self.inner.lock().directory.keys().copied().collect()
    }

    fn total_records(&self) -> u64 {
        self.inner
            .lock()
            .directory
            .values()
            .map(|m| m.records)
            .sum()
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        self.inner.get_mut().flush()
    }

    fn stats(&self) -> IoStats {
        self.inner.lock().stats
    }

    fn backend_name(&self) -> &'static str {
        "Disk storage"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("simcloud-storage-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.db", std::process::id()))
    }

    fn rec(id: u64, len: usize) -> Record {
        Record::new(
            id,
            (0..len).map(|i| ((id as usize + i) % 256) as u8).collect(),
        )
    }

    #[test]
    fn create_append_read() {
        let path = tmp("basic");
        let mut s = DiskStore::create(&path).unwrap();
        s.append(BucketId(1), rec(1, 100)).unwrap();
        s.append(BucketId(1), rec(2, 50)).unwrap();
        s.append(BucketId(2), rec(3, 10)).unwrap();
        let b1 = s.read_bucket(BucketId(1)).unwrap();
        assert_eq!(b1, vec![rec(1, 100), rec(2, 50)]);
        assert_eq!(s.bucket_len(BucketId(2)), 1);
        assert_eq!(s.total_records(), 3);
        let only2 = s.read_matching(BucketId(1), &|id| id == 2).unwrap();
        assert_eq!(only2, vec![rec(2, 50)]);
        std::fs::remove_file(path).unwrap();
    }

    /// The targeted read materializes only wanted records — including when
    /// records span page boundaries — counts only those as read back, and
    /// keeps the full-scan corruption checks.
    #[test]
    fn read_matching_filters_before_materializing() {
        let path = tmp("matching");
        let mut s = DiskStore::create(&path).unwrap();
        // 3000-byte payloads span pages, so the filter must walk the raw
        // chain stream, not per-page record boundaries.
        for i in 0..10u64 {
            s.append(BucketId(7), rec(i, 3000)).unwrap();
        }
        let read_before = s.stats().records_read;
        let got = s
            .read_matching(BucketId(7), &|id| id == 3 || id == 8)
            .unwrap();
        assert_eq!(got, vec![rec(3, 3000), rec(8, 3000)]);
        assert_eq!(
            s.stats().records_read - read_before,
            2,
            "unwanted records are skipped, not counted as read"
        );
        assert!(s.read_matching(BucketId(7), &|_| false).unwrap().is_empty());
        assert!(matches!(
            s.read_matching(BucketId(99), &|_| true),
            Err(StorageError::UnknownBucket(_))
        ));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn records_spanning_pages() {
        let path = tmp("span");
        let mut s = DiskStore::create(&path).unwrap();
        // Payloads bigger than one page must span the chain.
        for i in 0..10u64 {
            s.append(BucketId(7), rec(i, 3000)).unwrap();
        }
        let back = s.read_bucket(BucketId(7)).unwrap();
        assert_eq!(back.len(), 10);
        for (i, r) in back.iter().enumerate() {
            assert_eq!(*r, rec(i as u64, 3000));
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn flush_and_reopen_preserves_data() {
        let path = tmp("reopen");
        {
            let mut s = DiskStore::create(&path).unwrap();
            for b in 0..5u64 {
                for i in 0..20u64 {
                    s.append(BucketId(b), rec(b * 100 + i, 200)).unwrap();
                }
            }
            s.flush().unwrap();
        }
        {
            let mut s = DiskStore::open(&path).unwrap();
            assert_eq!(s.total_records(), 100);
            let mut ids = s.bucket_ids();
            ids.sort();
            assert_eq!(ids, (0..5).map(BucketId).collect::<Vec<_>>());
            let b3 = s.read_bucket(BucketId(3)).unwrap();
            assert_eq!(b3.len(), 20);
            assert_eq!(b3[0], rec(300, 200));
            // store remains writable after reopen
            s.append(BucketId(3), rec(999, 10)).unwrap();
            assert_eq!(s.bucket_len(BucketId(3)), 21);
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn delete_bucket_recycles_pages() {
        let path = tmp("recycle");
        let mut s = DiskStore::create(&path).unwrap();
        for i in 0..50u64 {
            s.append(BucketId(1), rec(i, 1000)).unwrap();
        }
        s.flush().unwrap();
        let pages_before = s.page_count();
        s.delete_bucket(BucketId(1)).unwrap();
        // Rewriting similar volume should not grow the file (free list reuse).
        for i in 0..50u64 {
            s.append(BucketId(2), rec(i, 1000)).unwrap();
        }
        assert!(
            s.page_count() <= pages_before + 2,
            "pages grew {} -> {} despite free list",
            pages_before,
            s.page_count()
        );
        assert!(s.read_bucket(BucketId(1)).is_err());
        assert_eq!(s.bucket_len(BucketId(2)), 50);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn small_pool_still_correct() {
        let path = tmp("smallpool");
        let mut s = DiskStore::create_with_pool(&path, 2).unwrap();
        for b in 0..8u64 {
            for i in 0..10u64 {
                s.append(BucketId(b), rec(b * 10 + i, 500)).unwrap();
            }
        }
        for b in 0..8u64 {
            let recs = s.read_bucket(BucketId(b)).unwrap();
            assert_eq!(recs.len(), 10, "bucket {b}");
            for (i, r) in recs.iter().enumerate() {
                assert_eq!(*r, rec(b * 10 + i as u64, 500));
            }
        }
        let st = s.stats();
        assert!(st.page_reads > 0, "tiny pool must miss");
        assert!(st.page_writes > 0);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn open_rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, vec![0u8; PAGE_SIZE]).unwrap();
        match DiskStore::open(&path) {
            Err(StorageError::Corrupt(msg)) => assert!(msg.contains("magic")),
            other => panic!("expected corrupt error, got {other:?}"),
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn empty_store_flush_reopen() {
        let path = tmp("empty");
        {
            let mut s = DiskStore::create(&path).unwrap();
            s.flush().unwrap();
        }
        let s = DiskStore::open(&path).unwrap();
        assert_eq!(s.total_records(), 0);
        assert!(s.bucket_ids().is_empty());
        assert_eq!(s.backend_name(), "Disk storage");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn pool_hits_are_counted() {
        let path = tmp("poolhits");
        let mut s = DiskStore::create(&path).unwrap();
        s.append(BucketId(1), rec(1, 10)).unwrap();
        let _ = s.read_bucket(BucketId(1)).unwrap();
        let _ = s.read_bucket(BucketId(1)).unwrap();
        assert!(s.stats().pool_hits > 0);
        std::fs::remove_file(path).unwrap();
    }
}
