//! Write-ahead log: CRC-framed, LSN-stamped full-page images plus commit
//! frames carrying the new meta document.
//!
//! One `flush()` appends one *batch* to `<path>.wal`:
//!
//! ```text
//! page frame            commit frame
//! 0   4  magic "SWFP"   0   4  magic "SWFC"
//! 4   4  crc32 of 8..   4   4  crc32 of 8..
//! 8   8  lsn            8   8  lsn
//! 16  4  page_id        16  4  meta_len (= 48)
//! 20  4096 page image   20  .. meta document
//! ```
//!
//! The batch is fsync'd *before* any page is written in place — the log is
//! the commit point. Recovery scans from the start, stops at the first
//! torn, corrupt or LSN-non-monotonic frame (duplicate and reordered
//! frames therefore truncate the tail rather than replay), and applies the
//! page images of every batch up to the last valid commit frame, gated by
//! the on-disk page LSN: a slot whose page already carries `lsn >= frame
//! lsn` is skipped, making replay idempotent. After replay the WAL is
//! truncated to zero.
//!
//! Part of the zero-panic-site storage recovery zone.

use crate::backend::Backend;
use crate::meta::Meta;
use crate::pagefmt::{self, crc32, get_bytes, put_bytes, read_u32, read_u64, PAGE_SIZE};
use crate::StorageError;

/// Magic of a full-page-image frame.
pub const PAGE_FRAME_MAGIC: [u8; 4] = *b"SWFP";
/// Magic of a commit frame.
pub const COMMIT_FRAME_MAGIC: [u8; 4] = *b"SWFC";
/// Fixed header bytes of either frame kind.
pub const FRAME_HDR: usize = 20;
/// Clamp on the commit frame's claimed meta length — a corrupt length
/// field must never drive a huge allocation.
pub const MAX_COMMIT_META: usize = 4096;

const OFF_MAGIC: usize = 0;
const OFF_CRC: usize = 4;
const OFF_LSN: usize = 8;
const OFF_ARG: usize = 16; // page_id or meta_len

fn frame_crc(frame: &[u8]) -> Result<u32, StorageError> {
    Ok(crc32(get_bytes(
        frame,
        OFF_LSN,
        frame.len().saturating_sub(OFF_LSN),
    )?))
}

fn build_frame(magic: [u8; 4], lsn: u64, arg: u32, payload: &[u8]) -> Vec<u8> {
    let mut frame = vec![0u8; FRAME_HDR + payload.len()];
    let built: Result<(), StorageError> = (|| {
        put_bytes(&mut frame, OFF_MAGIC, &magic)?;
        put_bytes(&mut frame, OFF_LSN, &lsn.to_le_bytes())?;
        put_bytes(&mut frame, OFF_ARG, &arg.to_le_bytes())?;
        put_bytes(&mut frame, FRAME_HDR, payload)?;
        let crc = frame_crc(&frame)?;
        put_bytes(&mut frame, OFF_CRC, &crc.to_le_bytes())
    })();
    // The buffer is sized for exactly these fields; cannot fail.
    debug_assert!(built.is_ok());
    frame
}

/// Appends a full-page-image frame at `off`; returns the next offset.
pub fn append_page_frame(
    wal: &mut dyn Backend,
    off: u64,
    lsn: u64,
    page_id: u32,
    image: &[u8],
) -> Result<u64, StorageError> {
    if image.len() != PAGE_SIZE {
        return Err(StorageError::Corrupt(format!(
            "page frame payload of {} bytes (want {PAGE_SIZE})",
            image.len()
        )));
    }
    let frame = build_frame(PAGE_FRAME_MAGIC, lsn, page_id, image);
    wal.write_at(off, &frame)?;
    Ok(off + frame.len() as u64)
}

/// Appends a commit frame carrying the encoded meta; returns the next
/// offset. The caller fsyncs the WAL after this — that sync is the commit
/// point of the batch.
pub fn append_commit_frame(
    wal: &mut dyn Backend,
    off: u64,
    lsn: u64,
    meta_bytes: &[u8],
) -> Result<u64, StorageError> {
    if meta_bytes.len() > MAX_COMMIT_META {
        return Err(StorageError::Corrupt(format!(
            "commit meta of {} bytes exceeds clamp {MAX_COMMIT_META}",
            meta_bytes.len()
        )));
    }
    // The clamp above keeps the length far below u32::MAX.
    let len = u32::try_from(meta_bytes.len()).unwrap_or(u32::MAX);
    let frame = build_frame(COMMIT_FRAME_MAGIC, lsn, len, meta_bytes);
    wal.write_at(off, &frame)?;
    Ok(off + frame.len() as u64)
}

/// One structurally valid frame, as seen by the scanner.
enum Frame {
    Page { lsn: u64, page_id: u32 },
    Commit { lsn: u64, meta: Vec<u8> },
}

/// Reads the frame starting at `off`, or `None` when the bytes there are
/// a torn tail (short, bad magic, bad CRC, over-clamp length). `None`
/// ends the scan; it is never an error.
fn read_frame(
    wal: &mut dyn Backend,
    off: u64,
    wal_len: u64,
    scratch: &mut Vec<u8>,
) -> Result<Option<(Frame, u64)>, StorageError> {
    let remaining = wal_len.saturating_sub(off);
    if remaining < FRAME_HDR as u64 {
        return Ok(None);
    }
    let mut hdr = [0u8; FRAME_HDR];
    wal.read_at(off, &mut hdr)?;
    let magic = get_bytes(&hdr, OFF_MAGIC, 4)?;
    let payload_len = if magic == PAGE_FRAME_MAGIC {
        PAGE_SIZE
    } else if magic == COMMIT_FRAME_MAGIC {
        let n = read_u32(&hdr, OFF_ARG)? as usize;
        if n > MAX_COMMIT_META {
            return Ok(None);
        }
        n
    } else {
        return Ok(None);
    };
    let total = (FRAME_HDR + payload_len) as u64;
    if remaining < total {
        return Ok(None);
    }
    scratch.clear();
    scratch.resize(FRAME_HDR + payload_len, 0);
    wal.read_at(off, scratch)?;
    let stored_crc = read_u32(scratch, OFF_CRC)?;
    if stored_crc != frame_crc(scratch)? {
        return Ok(None);
    }
    let lsn = read_u64(scratch, OFF_LSN)?;
    let arg = read_u32(scratch, OFF_ARG)?;
    let frame = if magic == PAGE_FRAME_MAGIC {
        Frame::Page { lsn, page_id: arg }
    } else {
        Frame::Commit {
            lsn,
            meta: get_bytes(scratch, FRAME_HDR, payload_len)?.to_vec(),
        }
    };
    Ok(Some((frame, off + total)))
}

/// What recovery found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// Meta of the last committed batch in the log, if any batch
    /// committed at all.
    pub meta: Option<Meta>,
    /// Page images written back into the page file.
    pub pages_applied: u64,
    /// Structurally valid frames scanned (both kinds, committed or not).
    pub frames_scanned: u64,
}

/// Replays the WAL into the page file: scans to the last valid commit
/// frame, applies its batches' page images LSN-gated, and syncs the page
/// file. Does **not** truncate the WAL or store meta — the caller owns
/// that ordering. Torn tails end the scan silently; a frame that passes
/// its CRC but is semantically impossible (out-of-range page id, image
/// that does not verify) is a typed `Corrupt` error.
pub fn recover(pages: &mut dyn Backend, wal: &mut dyn Backend) -> Result<Recovery, StorageError> {
    let wal_len = wal.len()?;
    let mut scratch = Vec::new();

    // Pass 1: find the last valid commit frame and the scan horizon.
    let mut off = 0u64;
    let mut max_lsn = 0u64;
    let mut min_next = 0u64;
    let mut frames_scanned = 0u64;
    let mut last_commit: Option<(u64, Vec<u8>, u64)> = None; // (lsn, meta, end)
    while let Some((frame, next_off)) = read_frame(wal, off, wal_len, &mut scratch)? {
        let lsn = match &frame {
            Frame::Page { lsn, .. } | Frame::Commit { lsn, .. } => *lsn,
        };
        // Duplicated or reordered frames break LSN monotonicity; treat
        // everything from here on as an invalid tail.
        if lsn < max_lsn || lsn < min_next {
            break;
        }
        max_lsn = lsn;
        frames_scanned += 1;
        if let Frame::Commit { lsn, meta } = frame {
            last_commit = Some((lsn, meta, next_off));
            min_next = lsn + 1;
        }
        off = next_off;
    }

    let Some((commit_lsn, meta_bytes, horizon)) = last_commit else {
        return Ok(Recovery {
            meta: None,
            pages_applied: 0,
            frames_scanned,
        });
    };
    let meta = Meta::decode(&meta_bytes)?;
    if meta.lsn != commit_lsn {
        return Err(StorageError::Corrupt(format!(
            "commit frame lsn {commit_lsn} disagrees with its meta lsn {}",
            meta.lsn
        )));
    }

    // Pass 2: apply page frames below the horizon, gated by on-disk LSN.
    let mut off = 0u64;
    let mut pages_applied = 0u64;
    let mut slot = vec![0u8; PAGE_SIZE];
    while off < horizon {
        let Some((frame, next_off)) = read_frame(wal, off, wal_len, &mut scratch)? else {
            // Pass 1 already walked these offsets; a frame cannot
            // disappear between passes.
            return Err(StorageError::Corrupt(
                "wal frame vanished between scan and replay".into(),
            ));
        };
        if let Frame::Page { lsn, page_id } = frame {
            // The image rides behind the frame header in `scratch` and its
            // own header must agree with the frame's — the frame CRC
            // already passed, so disagreement is corruption, not a tear.
            let image = get_bytes(&scratch, FRAME_HDR, PAGE_SIZE)?.to_vec();
            let hdr = pagefmt::parse_page(&image, Some(page_id))?;
            if hdr.lsn != lsn {
                return Err(StorageError::Corrupt(format!(
                    "wal image for page {page_id} carries lsn {} inside a frame stamped {lsn}",
                    hdr.lsn
                )));
            }
            if page_id == 0 || page_id >= meta.page_count {
                return Err(StorageError::Corrupt(format!(
                    "wal frame for page {page_id} outside committed file of {} pages",
                    meta.page_count
                )));
            }
            let pos = u64::from(page_id) * PAGE_SIZE as u64;
            let on_disk_lsn = if pages.len()? >= pos + PAGE_SIZE as u64 {
                pages.read_at(pos, &mut slot)?;
                pagefmt::parse_page(&slot, Some(page_id))
                    .ok()
                    .map(|h| h.lsn)
            } else {
                None
            };
            // Apply unless the slot already holds this batch (or a later
            // one); an unparseable slot (torn page) is always repaired.
            if on_disk_lsn.is_none_or(|disk| disk < lsn) {
                pages.write_at(pos, &image)?;
                pages_applied += 1;
            }
        }
        off = next_off;
    }
    if pages_applied > 0 {
        pages.sync()?;
    }
    Ok(Recovery {
        meta: Some(meta),
        pages_applied,
        frames_scanned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sealed_page(page_id: u32, lsn: u64, fill: u8) -> Vec<u8> {
        let mut page = vec![0u8; PAGE_SIZE];
        pagefmt::init_page(&mut page, page_id).unwrap();
        pagefmt::set_used(&mut page, 8).unwrap();
        page[PAGE_SIZE - 1] = fill;
        pagefmt::seal_page(&mut page, lsn).unwrap();
        page
    }

    fn meta_with(lsn: u64, page_count: u32) -> Meta {
        Meta {
            lsn,
            page_count,
            free_head: 0,
            dir_head: 0,
            clean: false,
        }
    }

    #[test]
    fn empty_wal_recovers_to_nothing() {
        let mut pages = VecBackend(Vec::new());
        let mut wal = VecBackend(Vec::new());
        let r = recover(&mut pages, &mut wal).unwrap();
        assert_eq!(r.meta, None);
        assert_eq!(r.pages_applied, 0);
    }

    // Minimal in-memory Backend for exercising the codec without the
    // fault machinery.
    struct VecBackend(Vec<u8>);
    impl Backend for VecBackend {
        fn read_at(&mut self, off: u64, buf: &mut [u8]) -> Result<(), StorageError> {
            let start = off as usize;
            let src = self
                .0
                .get(start..start + buf.len())
                .ok_or_else(|| StorageError::Corrupt("short read".into()))?;
            buf.copy_from_slice(src);
            Ok(())
        }
        fn write_at(&mut self, off: u64, data: &[u8]) -> Result<(), StorageError> {
            let end = off as usize + data.len();
            if self.0.len() < end {
                self.0.resize(end, 0);
            }
            self.0[off as usize..end].copy_from_slice(data);
            Ok(())
        }
        fn len(&mut self) -> Result<u64, StorageError> {
            Ok(self.0.len() as u64)
        }
        fn set_len(&mut self, len: u64) -> Result<(), StorageError> {
            self.0.resize(len as usize, 0);
            Ok(())
        }
        fn sync(&mut self) -> Result<(), StorageError> {
            Ok(())
        }
    }

    fn logged_batch(wal: &mut VecBackend, lsn: u64, page_ids: &[u32], page_count: u32) -> u64 {
        let mut off = wal.len().unwrap();
        for &id in page_ids {
            off = append_page_frame(wal, off, lsn, id, &sealed_page(id, lsn, id as u8)).unwrap();
        }
        append_commit_frame(wal, off, lsn, &meta_with(lsn, page_count).encode()).unwrap()
    }

    #[test]
    fn replay_applies_committed_batch() {
        let mut pages = VecBackend(pagefmt::stamp_page());
        let mut wal = VecBackend(Vec::new());
        logged_batch(&mut wal, 1, &[1, 2], 3);
        let r = recover(&mut pages, &mut wal).unwrap();
        assert_eq!(r.pages_applied, 2);
        assert_eq!(r.meta.unwrap(), meta_with(1, 3));
        let mut slot = vec![0u8; PAGE_SIZE];
        pages.read_at(PAGE_SIZE as u64, &mut slot).unwrap();
        assert_eq!(pagefmt::parse_page(&slot, Some(1)).unwrap().lsn, 1);
    }

    #[test]
    fn uncommitted_tail_is_ignored() {
        let mut pages = VecBackend(pagefmt::stamp_page());
        let mut wal = VecBackend(Vec::new());
        let off = logged_batch(&mut wal, 1, &[1], 2);
        // A batch that never committed: page frames only.
        append_page_frame(&mut wal, off, 2, 1, &sealed_page(1, 2, 9)).unwrap();
        let r = recover(&mut pages, &mut wal).unwrap();
        assert_eq!(r.meta.unwrap().lsn, 1);
        assert_eq!(r.pages_applied, 1);
        let mut slot = vec![0u8; PAGE_SIZE];
        pages.read_at(PAGE_SIZE as u64, &mut slot).unwrap();
        assert_eq!(
            pagefmt::parse_page(&slot, Some(1)).unwrap().lsn,
            1,
            "uncommitted image must not be applied"
        );
    }

    #[test]
    fn torn_tail_stops_the_scan_silently() {
        let mut pages = VecBackend(pagefmt::stamp_page());
        let mut wal = VecBackend(Vec::new());
        let end = logged_batch(&mut wal, 1, &[1], 2);
        for cut in [1, FRAME_HDR as u64 - 1, FRAME_HDR as u64 + 7, end - 1] {
            let mut torn = VecBackend(wal.0.get(..cut as usize).unwrap().to_vec());
            let r = recover(&mut pages, &mut torn).unwrap();
            assert_eq!(r.meta, None, "cut at {cut} should lose the commit");
        }
    }

    #[test]
    fn replay_is_idempotent_via_lsn_gate() {
        let mut pages = VecBackend(pagefmt::stamp_page());
        let mut wal = VecBackend(Vec::new());
        logged_batch(&mut wal, 1, &[1], 2);
        assert_eq!(recover(&mut pages, &mut wal).unwrap().pages_applied, 1);
        assert_eq!(
            recover(&mut pages, &mut wal).unwrap().pages_applied,
            0,
            "second replay must skip every up-to-date slot"
        );
    }

    #[test]
    fn duplicate_and_reordered_frames_truncate_the_tail() {
        // Duplicate commit: same lsn twice — the second violates min_next.
        let mut wal = VecBackend(Vec::new());
        let off = logged_batch(&mut wal, 1, &[1], 2);
        logged_batch(&mut wal, 1, &[1], 2); // duplicate batch, same lsn
        let mut pages = VecBackend(pagefmt::stamp_page());
        let r = recover(&mut pages, &mut wal).unwrap();
        assert_eq!(r.meta.unwrap().lsn, 1);
        assert!(wal.len().unwrap() > off);

        // Reordered: lsn 2 then lsn 1 — scan stops before the stale batch.
        let mut wal = VecBackend(Vec::new());
        logged_batch(&mut wal, 2, &[1], 2);
        logged_batch(&mut wal, 1, &[1], 2);
        let mut pages = VecBackend(pagefmt::stamp_page());
        let r = recover(&mut pages, &mut wal).unwrap();
        assert_eq!(r.meta.unwrap().lsn, 2);
        let mut slot = vec![0u8; PAGE_SIZE];
        pages.read_at(PAGE_SIZE as u64, &mut slot).unwrap();
        assert_eq!(pagefmt::parse_page(&slot, Some(1)).unwrap().lsn, 2);
    }

    #[test]
    fn out_of_range_page_id_is_typed_corrupt() {
        let mut wal = VecBackend(Vec::new());
        let off = append_page_frame(&mut wal, 0, 1, 9, &sealed_page(9, 1, 0)).unwrap();
        append_commit_frame(&mut wal, off, 1, &meta_with(1, 2).encode()).unwrap();
        let mut pages = VecBackend(pagefmt::stamp_page());
        let err = recover(&mut pages, &mut wal).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
    }

    #[test]
    fn oversized_commit_meta_is_rejected_at_append() {
        let mut wal = VecBackend(Vec::new());
        let err = append_commit_frame(&mut wal, 0, 1, &vec![0u8; MAX_COMMIT_META + 1]).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
    }

    #[test]
    fn over_clamp_length_field_stops_scan_without_allocating() {
        // Hand-build a commit frame whose length field claims 2 GiB.
        let mut frame = vec![0u8; FRAME_HDR];
        frame[..4].copy_from_slice(&COMMIT_FRAME_MAGIC);
        frame[OFF_ARG..OFF_ARG + 4].copy_from_slice(&0x8000_0000u32.to_le_bytes());
        let mut wal = VecBackend(frame);
        let mut pages = VecBackend(pagefmt::stamp_page());
        let r = recover(&mut pages, &mut wal).unwrap();
        assert_eq!(r.meta, None);
        assert_eq!(r.frames_scanned, 0);
    }

    #[test]
    fn torn_page_slot_is_repaired_even_with_high_garbage_lsn() {
        // A torn slot parses as garbage; the gate must apply the frame
        // regardless of what bytes happen to sit where the lsn lives.
        let mut pages = VecBackend(pagefmt::stamp_page());
        pages
            .write_at(PAGE_SIZE as u64, &vec![0xFFu8; PAGE_SIZE])
            .unwrap();
        let mut wal = VecBackend(Vec::new());
        logged_batch(&mut wal, 1, &[1], 2);
        let r = recover(&mut pages, &mut wal).unwrap();
        assert_eq!(r.pages_applied, 1);
        let mut slot = vec![0u8; PAGE_SIZE];
        pages.read_at(PAGE_SIZE as u64, &mut slot).unwrap();
        assert!(pagefmt::parse_page(&slot, Some(1)).is_ok());
    }
}
