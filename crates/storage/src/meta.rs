//! The store's meta document: one small, checksummed, atomically-replaced
//! record of the committed state.
//!
//! v1 kept this state in the page file's own page 0 and rewrote it in
//! place — the flush-ordering hazard PR 8 removes. v2 stores it in a
//! sidecar `<path>.meta` written via temp-file + rename (see
//! [`StorageEnv::store_meta`](crate::backend::StorageEnv::store_meta)),
//! so the meta is always either the old or the new document, never torn:
//!
//! ```text
//! offset  size  field
//! 0       4     crc32      — CRC of bytes 4..48, little-endian
//! 4       8     magic      — "SCLDMET2"
//! 12      4     version    — 2
//! 16      8     lsn        — last committed batch
//! 24      4     page_count — pages in the file, including the stamp
//! 28      4     free_head  — head of the free-page chain (0 = none)
//! 32      4     dir_head   — head of the directory chain (0 = none)
//! 36      1     clean      — 1 = no writer active since last commit
//! 37      11    reserved, zero
//! ```
//!
//! Part of the zero-panic-site storage recovery zone.

use crate::pagefmt::{crc32, get_bytes, put_bytes, read_u32, read_u64};
use crate::StorageError;

/// Magic of a v2 meta document.
pub const META_MAGIC: [u8; 8] = *b"SCLDMET2";
/// Format version stored in the document.
pub const META_VERSION: u32 = 2;
/// Encoded size in bytes.
pub const META_LEN: usize = 48;

const OFF_CRC: usize = 0;
const OFF_MAGIC: usize = 4;
const OFF_VERSION: usize = 12;
const OFF_LSN: usize = 16;
const OFF_PAGE_COUNT: usize = 24;
const OFF_FREE_HEAD: usize = 28;
const OFF_DIR_HEAD: usize = 32;
const OFF_CLEAN: usize = 36;

/// The committed state of a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Meta {
    /// Last committed batch number.
    pub lsn: u64,
    /// Pages in the file, including the slot-0 stamp page.
    pub page_count: u32,
    /// Head of the free-page chain (0 = none).
    pub free_head: u32,
    /// Head of the directory chain (0 = none).
    pub dir_head: u32,
    /// Whether the store was cleanly committed with no writer active
    /// since (false = `open()` must run recovery).
    pub clean: bool,
}

impl Meta {
    /// Meta of a freshly created store: one stamp page, nothing committed.
    pub fn initial() -> Self {
        Meta {
            lsn: 0,
            page_count: 1,
            free_head: 0,
            dir_head: 0,
            clean: false,
        }
    }

    /// Serializes to the checksummed 48-byte document.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = vec![0u8; META_LEN];
        let fields: Result<(), StorageError> = (|| {
            put_bytes(&mut buf, OFF_MAGIC, &META_MAGIC)?;
            put_bytes(&mut buf, OFF_VERSION, &META_VERSION.to_le_bytes())?;
            put_bytes(&mut buf, OFF_LSN, &self.lsn.to_le_bytes())?;
            put_bytes(&mut buf, OFF_PAGE_COUNT, &self.page_count.to_le_bytes())?;
            put_bytes(&mut buf, OFF_FREE_HEAD, &self.free_head.to_le_bytes())?;
            put_bytes(&mut buf, OFF_DIR_HEAD, &self.dir_head.to_le_bytes())?;
            put_bytes(&mut buf, OFF_CLEAN, &[u8::from(self.clean)])?;
            let crc = crc32(buf.get(OFF_MAGIC..).unwrap_or(&[]));
            put_bytes(&mut buf, OFF_CRC, &crc.to_le_bytes())
        })();
        // META_LEN covers every field above; the closure cannot fail.
        debug_assert!(fields.is_ok());
        buf
    }

    /// Parses and verifies a meta document.
    pub fn decode(buf: &[u8]) -> Result<Meta, StorageError> {
        if buf.len() != META_LEN {
            return Err(StorageError::Corrupt(format!(
                "meta document of {} bytes (want {META_LEN})",
                buf.len()
            )));
        }
        if get_bytes(buf, OFF_MAGIC, 8)? != META_MAGIC {
            return Err(StorageError::Corrupt("bad meta magic".into()));
        }
        let stored_crc = read_u32(buf, OFF_CRC)?;
        let actual_crc = crc32(get_bytes(buf, OFF_MAGIC, META_LEN - OFF_MAGIC)?);
        if stored_crc != actual_crc {
            return Err(StorageError::Corrupt(format!(
                "meta crc mismatch (stored {stored_crc:08x}, computed {actual_crc:08x})"
            )));
        }
        let version = read_u32(buf, OFF_VERSION)?;
        if version != META_VERSION {
            return Err(StorageError::Corrupt(format!(
                "meta version {version} (want {META_VERSION})"
            )));
        }
        let page_count = read_u32(buf, OFF_PAGE_COUNT)?;
        if page_count == 0 {
            return Err(StorageError::Corrupt("meta claims zero pages".into()));
        }
        Ok(Meta {
            lsn: read_u64(buf, OFF_LSN)?,
            page_count,
            free_head: read_u32(buf, OFF_FREE_HEAD)?,
            dir_head: read_u32(buf, OFF_DIR_HEAD)?,
            clean: get_bytes(buf, OFF_CLEAN, 1)? != [0],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let meta = Meta {
            lsn: 123_456_789,
            page_count: 42,
            free_head: 7,
            dir_head: 9,
            clean: true,
        };
        let bytes = meta.encode();
        assert_eq!(bytes.len(), META_LEN);
        assert_eq!(Meta::decode(&bytes).unwrap(), meta);
        let unclean = Meta {
            clean: false,
            ..meta
        };
        assert_eq!(Meta::decode(&unclean.encode()).unwrap(), unclean);
    }

    #[test]
    fn decode_rejects_every_flipped_bit() {
        let bytes = Meta::initial().encode();
        for byte in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[byte] ^= 0x10;
            assert!(
                Meta::decode(&bad).is_err(),
                "flip at byte {byte} undetected"
            );
        }
    }

    #[test]
    fn decode_rejects_wrong_sizes_and_zero_pages() {
        assert!(Meta::decode(&[]).is_err());
        assert!(Meta::decode(&[0u8; META_LEN - 1]).is_err());
        assert!(Meta::decode(&[0u8; META_LEN + 1]).is_err());
        let mut zero_pages = Meta::initial();
        zero_pages.page_count = 0;
        assert!(Meta::decode(&zero_pages.encode()).is_err());
    }
}
