//! The opaque storage record: `(id, payload)`.

use serde::{Deserialize, Serialize};

/// Maximum payload size a record may carry (fits a `u32` length with ample
/// headroom below page-chain bookkeeping limits).
pub const MAX_PAYLOAD: usize = 256 * 1024 * 1024;

/// One stored record. The id is the external [`ObjectId`] value; the payload
/// is whatever the index layer serialized (routing info + sealed object).
///
/// [`ObjectId`]: https://docs.rs/simcloud-metric
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// External object identifier.
    pub id: u64,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
}

impl Record {
    /// Creates a record.
    pub fn new(id: u64, payload: Vec<u8>) -> Self {
        Self { id, payload }
    }

    /// Bytes occupied by the encoded form: 8 (id) + 4 (len) + payload.
    pub fn encoded_len(&self) -> usize {
        8 + 4 + self.payload.len()
    }

    /// Appends the binary encoding to `out`. A payload longer than
    /// [`MAX_PAYLOAD`] encodes a saturated length marker that `peek`
    /// rejects on read — the write side stays total, the read side
    /// refuses rather than mis-frame the stream.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.reserve(self.encoded_len());
        out.extend_from_slice(&self.id.to_le_bytes());
        let len = u32::try_from(self.payload.len()).unwrap_or(u32::MAX);
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&self.payload);
    }

    /// Reads one record's *header* from the front of `buf` without
    /// materializing the payload: returns `(id, payload offset, bytes
    /// consumed)`, or `None` if truncated. Filtered bucket scans use this
    /// to skip unwanted records without cloning their payloads — the
    /// payload of a wanted record is `buf[offset..consumed]`.
    pub fn peek(buf: &[u8]) -> Option<(u64, usize, usize)> {
        let id = u64::from_le_bytes(buf.get(0..8)?.try_into().ok()?);
        let len = u32::from_le_bytes(buf.get(8..12)?.try_into().ok()?) as usize;
        // The length clamp runs before any allocation or slicing: a
        // hostile header can never drive a huge allocation downstream.
        if len > MAX_PAYLOAD || buf.len() < 12 + len {
            return None;
        }
        Some((id, 12, 12 + len))
    }

    /// Decodes one record from the front of `buf`; returns record and bytes
    /// consumed, or `None` if truncated.
    pub fn decode(buf: &[u8]) -> Option<(Self, usize)> {
        let (id, payload_off, used) = Self::peek(buf)?;
        Some((
            Self {
                id,
                payload: buf.get(payload_off..used)?.to_vec(),
            },
            used,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let r = Record::new(42, vec![1, 2, 3, 4, 5]);
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert_eq!(buf.len(), r.encoded_len());
        let (back, used) = Record::decode(&buf).unwrap();
        assert_eq!(back, r);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn empty_payload_round_trip() {
        let r = Record::new(0, vec![]);
        let mut buf = Vec::new();
        r.encode(&mut buf);
        let (back, used) = Record::decode(&buf).unwrap();
        assert_eq!(back, r);
        assert_eq!(used, 12);
    }

    /// `peek` sees exactly what `decode` sees, minus the payload clone.
    #[test]
    fn peek_matches_decode() {
        let r = Record::new(42, vec![1, 2, 3, 4, 5]);
        let mut buf = Vec::new();
        r.encode(&mut buf);
        let (id, payload_off, used) = Record::peek(&buf).unwrap();
        assert_eq!(id, 42);
        assert_eq!(&buf[payload_off..used], &r.payload[..]);
        assert_eq!(used, r.encoded_len());
        for cut in [0, 11, buf.len() - 1] {
            assert!(Record::peek(&buf[..cut]).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn truncated_decode_fails() {
        let r = Record::new(7, vec![9; 10]);
        let mut buf = Vec::new();
        r.encode(&mut buf);
        for cut in [0, 5, 11, buf.len() - 1] {
            assert!(Record::decode(&buf[..cut]).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn sequential_records_decode_in_order() {
        let rs = vec![
            Record::new(1, vec![0xaa; 3]),
            Record::new(2, vec![]),
            Record::new(3, vec![0xbb; 17]),
        ];
        let mut buf = Vec::new();
        for r in &rs {
            r.encode(&mut buf);
        }
        let mut off = 0;
        let mut got = Vec::new();
        while off < buf.len() {
            let (r, used) = Record::decode(&buf[off..]).unwrap();
            got.push(r);
            off += used;
        }
        assert_eq!(got, rs);
    }
}
