//! # simcloud-baselines — the comparison schemes of paper §3 and §5.4
//!
//! The paper positions the Encrypted M-Index against the outsourced
//! similarity-search techniques of Yiu et al. \[4\] and the trivial scheme.
//! All four are implemented here behind one interface ([`SecureScheme`]),
//! with the same client/server/communication cost accounting as the core
//! system, so Table 9's comparison can be regenerated end-to-end:
//!
//! * [`TrivialScheme`] — "encrypt every object and send only the encrypted
//!   objects to the server … client downloads all the objects, decrypts
//!   them and performs the search" (§3). Perfect privacy, absurd
//!   communication cost; the calibration floor.
//! * [`EhiScheme`] — *Encrypted Hierarchical Index* (§3.1): a metric tree
//!   whose nodes are individually encrypted blobs; the server is a dumb
//!   blob store and the client traverses best-first, one round trip per
//!   node. Exact k-NN, high communication and round-trip count.
//! * [`MptScheme`] — *Metric-Preserving Transformation* (§3.2): distances
//!   to public anchors are encrypted with an order-preserving function
//!   (built from a data sample, as the paper notes MPT requires); the
//!   server filters by OPE-interval containment, the client refines.
//! * [`FdhScheme`] — *Flexible Distance-based Hashing* \[4\]: anchor/radius
//!   bit signatures bucket the data; the server returns buckets in
//!   query-signature Hamming order; approximate like the Encrypted
//!   M-Index's k-NN.
//!
//! Every scheme keeps object payloads sealed with the same AES envelope as
//! the core system, so decryption costs are directly comparable.

#![warn(missing_docs)]

pub mod ehi;
pub mod fdh;
pub mod kv;
pub mod mpt;
pub mod trivial;

pub use ehi::EhiScheme;
pub use fdh::FdhScheme;
pub use mpt::MptScheme;
pub use trivial::TrivialScheme;

use simcloud_core::CostReport;
use simcloud_metric::{ObjectId, Vector};

/// A search answer: object id and true distance.
pub type Neighbor = (ObjectId, f64);

/// Baseline errors.
#[derive(Debug)]
pub enum SchemeError {
    /// Transport failure.
    Transport(simcloud_transport::TransportError),
    /// Decryption/authentication failure.
    Seal(simcloud_crypto::SealError),
    /// Protocol violation.
    Protocol(String),
}

impl std::fmt::Display for SchemeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemeError::Transport(e) => write!(f, "transport: {e}"),
            SchemeError::Seal(e) => write!(f, "seal: {e}"),
            SchemeError::Protocol(s) => write!(f, "protocol: {s}"),
        }
    }
}

impl std::error::Error for SchemeError {}

impl From<simcloud_transport::TransportError> for SchemeError {
    fn from(e: simcloud_transport::TransportError) -> Self {
        SchemeError::Transport(e)
    }
}

impl From<simcloud_crypto::SealError> for SchemeError {
    fn from(e: simcloud_crypto::SealError) -> Self {
        SchemeError::Seal(e)
    }
}

/// Common interface of all outsourced secure-search schemes, with the
/// paper's cost decomposition on every operation.
pub trait SecureScheme {
    /// Scheme name as used in §5.4.
    fn name(&self) -> &'static str;

    /// Outsources the collection (construction phase).
    fn build(&mut self, data: &[(ObjectId, Vector)]) -> Result<CostReport, SchemeError>;

    /// k-nearest-neighbor query. `exact` schemes return the true k-NN;
    /// approximate ones their best effort (recall measured externally).
    fn knn(&mut self, q: &Vector, k: usize) -> Result<(Vec<Neighbor>, CostReport), SchemeError>;

    /// Whether `knn` is exact (EHI, trivial) or approximate (MPT via radius
    /// expansion is exact too; FDH is approximate).
    fn is_exact(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(SchemeError::Protocol("x".into()).to_string().contains("x"));
    }
}
