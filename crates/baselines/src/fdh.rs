//! Flexible Distance-based Hashing — FDH (Yiu et al. \[4\]).
//!
//! Each object is reduced to an `m`-bit signature: bit `i` says whether
//! `d(o, a_i) ≤ r_i` for anchor `a_i` with threshold radius `r_i` (fitted to
//! the median anchor distance so bits are balanced). Objects live in
//! buckets keyed by signature; a query fetches buckets in increasing
//! Hamming distance from its own signature until enough candidates are
//! gathered, then refines client-side.
//!
//! FDH is *approximate* (like the Encrypted M-Index's k-NN strategy): the
//! true neighbor may hash far away. The paper's Table 9 comparison notes
//! the Encrypted M-Index beats FDH in CPU time at comparable recall.

use std::collections::HashMap;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use simcloud_core::{CostReport, SecretKey};
use simcloud_metric::{Metric, ObjectId, Vector};
use simcloud_transport::{InProcessTransport, RequestHandler, Stopwatch, Transport};

use crate::{Neighbor, SchemeError, SecureScheme};

/// Server half: buckets of sealed objects keyed by signature.
///
/// Protocol:
/// ```text
/// request  := 0x01 u64 id u64 sig u32 len bytes      INSERT
///           | 0x02 u64 sig u32 min_candidates        PROBE
/// response := 0x01                                    insert ok
///           | 0x02 u32 n { u64 id; u32 len; bytes }*n candidates
///           | 0x04 u16 len utf8                       error
/// ```
///
/// PROBE returns whole buckets in increasing Hamming distance from `sig`
/// until at least `min_candidates` objects are collected (or the store is
/// exhausted).
#[derive(Debug, Default)]
pub struct FdhServer {
    buckets: HashMap<u64, Vec<(u64, Vec<u8>)>>,
}

impl RequestHandler for FdhServer {
    fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        fn error(msg: &str) -> Vec<u8> {
            let mut out = vec![0x04];
            let b = msg.as_bytes();
            out.extend_from_slice(&(b.len() as u16).to_le_bytes());
            out.extend_from_slice(b);
            out
        }
        match request.first() {
            Some(0x01) => {
                if request.len() < 21 {
                    return error("short insert");
                }
                let id = u64::from_le_bytes(request[1..9].try_into().unwrap());
                let sig = u64::from_le_bytes(request[9..17].try_into().unwrap());
                let len = u32::from_le_bytes(request[17..21].try_into().unwrap()) as usize;
                if request.len() != 21 + len {
                    return error("insert size mismatch");
                }
                self.buckets
                    .entry(sig)
                    .or_default()
                    .push((id, request[21..].to_vec()));
                vec![0x01]
            }
            Some(0x02) => {
                if request.len() != 13 {
                    return error("short probe");
                }
                let sig = u64::from_le_bytes(request[1..9].try_into().unwrap());
                let min = u32::from_le_bytes(request[9..13].try_into().unwrap()) as usize;
                // Buckets ordered by Hamming distance to the query signature
                // (stable tiebreak on the signature value).
                let mut keys: Vec<u64> = self.buckets.keys().copied().collect();
                keys.sort_by_key(|k| ((k ^ sig).count_ones(), *k));
                let mut out = vec![0x02];
                let mut count = 0u32;
                let mut body = Vec::new();
                for k in keys {
                    if count as usize >= min {
                        break;
                    }
                    for (id, sealed) in &self.buckets[&k] {
                        body.extend_from_slice(&id.to_le_bytes());
                        body.extend_from_slice(&(sealed.len() as u32).to_le_bytes());
                        body.extend_from_slice(sealed);
                        count += 1;
                    }
                }
                out.extend_from_slice(&count.to_le_bytes());
                out.extend_from_slice(&body);
                out
            }
            _ => error("unknown op"),
        }
    }
}

/// FDH configuration.
#[derive(Debug, Clone, Copy)]
pub struct FdhConfig {
    /// Number of anchor bits (≤ 64).
    pub bits: usize,
    /// Candidates requested per query (the accuracy/efficiency dial,
    /// like the M-Index CandSize).
    pub min_candidates: usize,
}

impl Default for FdhConfig {
    fn default() -> Self {
        Self {
            bits: 16,
            min_candidates: 48,
        }
    }
}

/// The FDH scheme.
pub struct FdhScheme<M: Metric<Vector>> {
    key: SecretKey,
    metric: M,
    config: FdhConfig,
    anchors: Vec<Vector>,
    radii: Vec<f64>,
    transport: InProcessTransport<FdhServer>,
    rng: StdRng,
}

impl<M: Metric<Vector>> std::fmt::Debug for FdhScheme<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FdhScheme").finish_non_exhaustive()
    }
}

impl<M: Metric<Vector>> FdhScheme<M> {
    /// Creates the scheme (anchors/radii fitted in `build`).
    pub fn new(key: SecretKey, metric: M, config: FdhConfig, seed: u64) -> Self {
        assert!(config.bits >= 1 && config.bits <= 64);
        Self {
            key,
            metric,
            config,
            anchors: Vec::new(),
            radii: Vec::new(),
            transport: InProcessTransport::new(FdhServer::default()),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn signature(&self, o: &Vector) -> u64 {
        let mut sig = 0u64;
        for (i, (a, r)) in self.anchors.iter().zip(&self.radii).enumerate() {
            if self.metric.distance(o, a) <= *r {
                sig |= 1 << i;
            }
        }
        sig
    }

    fn transport_delta(
        &mut self,
        before: simcloud_transport::TransportStats,
        costs: &mut CostReport,
    ) {
        let delta = self.transport.stats().since(&before);
        costs.server += delta.server_time;
        costs.communication += delta.comm_time;
        costs.bytes_sent += delta.bytes_sent;
        costs.bytes_received += delta.bytes_received;
    }
}

impl<M: Metric<Vector>> SecureScheme for FdhScheme<M> {
    fn name(&self) -> &'static str {
        "FDH"
    }

    fn build(&mut self, data: &[(ObjectId, Vector)]) -> Result<CostReport, SchemeError> {
        let mut costs = CostReport::default();
        let start = Instant::now();
        let vectors: Vec<Vector> = data.iter().map(|(_, v)| v.clone()).collect();
        let mut dist = Stopwatch::new();
        self.anchors = simcloud_metric::select_pivots(
            &vectors,
            self.config.bits.min(vectors.len()),
            &self.metric,
            simcloud_metric::PivotSelection::Random,
            0xFD4,
        );
        // Balanced radii: median distance from a sample to each anchor.
        dist.time(|| {
            let step = (vectors.len() / 64).max(1);
            self.radii = self
                .anchors
                .iter()
                .map(|a| {
                    let mut ds: Vec<f64> = vectors
                        .iter()
                        .step_by(step)
                        .map(|v| self.metric.distance(v, a))
                        .collect();
                    ds.sort_by(|x, y| x.partial_cmp(y).unwrap());
                    ds[ds.len() / 2]
                })
                .collect();
        });
        let mut enc = Stopwatch::new();
        for (id, o) in data {
            let sig = dist.time(|| self.signature(o));
            costs.distance_computations += self.anchors.len() as u64;
            let sealed = enc.time(|| {
                let mut plain = Vec::with_capacity(o.encoded_len());
                o.encode(&mut plain);
                self.key
                    .cipher()
                    .seal(&plain, self.key.mode(), &mut self.rng)
            });
            let mut req = Vec::with_capacity(21 + sealed.len());
            req.push(0x01);
            req.extend_from_slice(&id.0.to_le_bytes());
            req.extend_from_slice(&sig.to_le_bytes());
            req.extend_from_slice(&(sealed.len() as u32).to_le_bytes());
            req.extend_from_slice(&sealed);
            let before = self.transport.stats();
            let resp = self.transport.round_trip(&req)?;
            self.transport_delta(before, &mut costs);
            if resp != [0x01] {
                return Err(SchemeError::Protocol("insert rejected".into()));
            }
        }
        costs.encryption = enc.total();
        costs.distance = dist.total();
        costs.client = start.elapsed().saturating_sub(costs.server);
        Ok(costs)
    }

    fn knn(&mut self, q: &Vector, k: usize) -> Result<(Vec<Neighbor>, CostReport), SchemeError> {
        assert!(!self.anchors.is_empty(), "build() must run before knn()");
        let mut costs = CostReport::default();
        let start = Instant::now();
        let mut dist = Stopwatch::new();
        let sig = dist.time(|| self.signature(q));
        costs.distance_computations += self.anchors.len() as u64;

        let mut req = vec![0x02];
        req.extend_from_slice(&sig.to_le_bytes());
        req.extend_from_slice(&(self.config.min_candidates.max(k) as u32).to_le_bytes());
        let before = self.transport.stats();
        let resp = self.transport.round_trip(&req)?;
        self.transport_delta(before, &mut costs);
        if resp.first() != Some(&0x02) || resp.len() < 5 {
            return Err(SchemeError::Protocol("bad probe response".into()));
        }
        let n = u32::from_le_bytes(resp[1..5].try_into().unwrap()) as usize;
        costs.candidates = n as u64;
        let mut off = 5;
        let mut dec = Stopwatch::new();
        let mut result = Vec::with_capacity(n);
        for _ in 0..n {
            if resp.len() < off + 12 {
                return Err(SchemeError::Protocol("candidate truncated".into()));
            }
            let id = u64::from_le_bytes(resp[off..off + 8].try_into().unwrap());
            let len = u32::from_le_bytes(resp[off + 8..off + 12].try_into().unwrap()) as usize;
            off += 12;
            let sealed = &resp[off..off + len];
            off += len;
            let plain = dec.time(|| self.key.cipher().unseal(sealed))?;
            let (o, _) = Vector::decode(&plain)
                .map_err(|_| SchemeError::Protocol(format!("object {id} undecodable")))?;
            let d = dist.time(|| self.metric.distance(q, &o));
            costs.distance_computations += 1;
            result.push((ObjectId(id), d));
        }
        result.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        result.truncate(k);
        costs.decryption = dec.total();
        costs.distance = dist.total();
        costs.client = start.elapsed().saturating_sub(costs.server);
        Ok((result, costs))
    }

    fn is_exact(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use simcloud_metric::{PivotSelection, L2};

    fn data(n: usize, seed: u64) -> Vec<(ObjectId, Vector)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    ObjectId(i as u64),
                    Vector::new(vec![rng.gen_range(-4.0..4.0), rng.gen_range(-4.0..4.0)]),
                )
            })
            .collect()
    }

    #[test]
    fn fdh_returns_k_results_with_reasonable_quality() {
        let d = data(400, 1);
        let vectors: Vec<Vector> = d.iter().map(|(_, v)| v.clone()).collect();
        let (key, _) = SecretKey::generate(&vectors, 2, &L2, PivotSelection::Random, 2);
        let mut scheme = FdhScheme::new(key, L2, FdhConfig::default(), 3);
        scheme.build(&d).unwrap();
        // self-queries: the exact object hashes into the probed bucket, so
        // 1-NN recall on member queries should be high
        let mut hits = 0;
        for qi in (0..400).step_by(40) {
            let (res, costs) = scheme.knn(&d[qi].1, 1).unwrap();
            assert!(!res.is_empty());
            assert!(costs.candidates >= 1);
            if res[0].0 == d[qi].0 && res[0].1 == 0.0 {
                hits += 1;
            }
        }
        assert!(hits >= 9, "member 1-NN hits only {hits}/10");
        assert!(!scheme.is_exact());
    }

    #[test]
    fn fdh_candidates_bounded_by_request() {
        let d = data(500, 5);
        let vectors: Vec<Vector> = d.iter().map(|(_, v)| v.clone()).collect();
        let (key, _) = SecretKey::generate(&vectors, 2, &L2, PivotSelection::Random, 6);
        let cfg = FdhConfig {
            bits: 12,
            min_candidates: 40,
        };
        let mut scheme = FdhScheme::new(key, L2, cfg, 7);
        scheme.build(&d).unwrap();
        let (_, costs) = scheme.knn(&d[3].1, 1).unwrap();
        assert!(
            costs.candidates < 500,
            "probe returned {} of 500",
            costs.candidates
        );
    }

    #[test]
    fn server_probe_orders_by_hamming() {
        let mut s = FdhServer::default();
        let put = |s: &mut FdhServer, id: u64, sig: u64| {
            let mut req = vec![0x01];
            req.extend_from_slice(&id.to_le_bytes());
            req.extend_from_slice(&sig.to_le_bytes());
            req.extend_from_slice(&1u32.to_le_bytes());
            req.push(0xAB);
            assert_eq!(s.handle(&req), vec![0x01]);
        };
        put(&mut s, 1, 0b0000);
        put(&mut s, 2, 0b0001);
        put(&mut s, 3, 0b1111);
        let mut probe = vec![0x02];
        probe.extend_from_slice(&0b0000u64.to_le_bytes());
        probe.extend_from_slice(&2u32.to_le_bytes());
        let resp = s.handle(&probe);
        let n = u32::from_le_bytes(resp[1..5].try_into().unwrap());
        assert_eq!(n, 2);
        // first candidate must be from the exact bucket (id 1)
        let first_id = u64::from_le_bytes(resp[5..13].try_into().unwrap());
        assert_eq!(first_id, 1);
    }
}
