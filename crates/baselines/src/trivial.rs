//! The trivial scheme (paper §3): perfect privacy, no server-side work.
//!
//! The data owner ships sealed objects with no routing information at all;
//! a query downloads the entire collection, decrypts it and scans. It is
//! the privacy optimum and the communication-cost pessimum — the paper uses
//! it to motivate why *some* structural leakage (permutations) is the price
//! of a usable system.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use simcloud_core::{CostReport, SecretKey};
use simcloud_metric::{Metric, ObjectId, Vector};
use simcloud_transport::{InProcessTransport, Stopwatch, Transport};

use crate::kv::{wire, KvServer};
use crate::{Neighbor, SchemeError, SecureScheme};

/// Trivial download-everything scheme.
pub struct TrivialScheme<M: Metric<Vector>> {
    key: SecretKey,
    metric: M,
    transport: InProcessTransport<KvServer>,
    rng: StdRng,
}

impl<M: Metric<Vector>> std::fmt::Debug for TrivialScheme<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrivialScheme").finish_non_exhaustive()
    }
}

impl<M: Metric<Vector>> TrivialScheme<M> {
    /// Creates the scheme with an in-process blob server.
    pub fn new(key: SecretKey, metric: M, seed: u64) -> Self {
        Self {
            key,
            metric,
            transport: InProcessTransport::new(KvServer::new()),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn take_transport_delta(
        &mut self,
        before: simcloud_transport::TransportStats,
        costs: &mut CostReport,
    ) {
        let delta = self.transport.stats().since(&before);
        costs.server += delta.server_time;
        costs.communication += delta.comm_time;
        costs.bytes_sent += delta.bytes_sent;
        costs.bytes_received += delta.bytes_received;
    }
}

impl<M: Metric<Vector>> SecureScheme for TrivialScheme<M> {
    fn name(&self) -> &'static str {
        "Trivial"
    }

    fn build(&mut self, data: &[(ObjectId, Vector)]) -> Result<CostReport, SchemeError> {
        let mut costs = CostReport::default();
        let start = Instant::now();
        let mut enc = Stopwatch::new();
        for (id, o) in data {
            let sealed = enc.time(|| {
                let mut plain = Vec::with_capacity(o.encoded_len());
                o.encode(&mut plain);
                self.key
                    .cipher()
                    .seal(&plain, self.key.mode(), &mut self.rng)
            });
            let before = self.transport.stats();
            let resp = self.transport.round_trip(&wire::put(id.0, &sealed))?;
            self.take_transport_delta(before, &mut costs);
            if !wire::is_put_ok(&resp) {
                return Err(SchemeError::Protocol("put rejected".into()));
            }
        }
        costs.encryption = enc.total();
        costs.client = start.elapsed().saturating_sub(costs.server);
        Ok(costs)
    }

    fn knn(&mut self, q: &Vector, k: usize) -> Result<(Vec<Neighbor>, CostReport), SchemeError> {
        let mut costs = CostReport::default();
        let start = Instant::now();
        let before = self.transport.stats();
        let resp = self.transport.round_trip(&wire::get_all())?;
        self.take_transport_delta(before, &mut costs);
        let blobs =
            wire::decode_all(&resp).ok_or_else(|| SchemeError::Protocol("bad get_all".into()))?;
        costs.candidates = blobs.len() as u64;
        let mut dec = Stopwatch::new();
        let mut dist = Stopwatch::new();
        let mut scored = Vec::with_capacity(blobs.len());
        for (id, sealed) in blobs {
            let plain = dec.time(|| self.key.cipher().unseal(&sealed))?;
            let (o, _) = Vector::decode(&plain)
                .map_err(|_| SchemeError::Protocol(format!("object {id} undecodable")))?;
            let d = dist.time(|| self.metric.distance(q, &o));
            scored.push((ObjectId(id), d));
        }
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        scored.truncate(k);
        costs.decryption = dec.total();
        costs.distance = dist.total();
        costs.distance_computations = costs.candidates;
        costs.client = start.elapsed().saturating_sub(costs.server);
        Ok((scored, costs))
    }

    fn is_exact(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcloud_metric::{PivotSelection, L2};

    fn data(n: usize) -> Vec<(ObjectId, Vector)> {
        (0..n)
            .map(|i| {
                (
                    ObjectId(i as u64),
                    Vector::new(vec![i as f32, (i % 7) as f32]),
                )
            })
            .collect()
    }

    #[test]
    fn trivial_knn_is_exact_and_downloads_everything() {
        let d = data(60);
        let vectors: Vec<Vector> = d.iter().map(|(_, v)| v.clone()).collect();
        let (key, _) = SecretKey::generate(&vectors, 2, &L2, PivotSelection::Random, 1);
        let mut scheme = TrivialScheme::new(key, L2, 2);
        let build = scheme.build(&d).unwrap();
        assert!(build.encryption > std::time::Duration::ZERO);
        let q = Vector::new(vec![10.2, 3.0]);
        let (res, costs) = scheme.knn(&q, 3).unwrap();
        assert_eq!(res[0].0, ObjectId(10));
        assert_eq!(costs.candidates, 60, "downloads the entire collection");
        assert_eq!(costs.distance_computations, 60);
        assert!(scheme.is_exact());
        assert_eq!(scheme.name(), "Trivial");
    }
}
