//! Dumb blob-store server — the server role in the trivial and EHI schemes.
//!
//! "Server cannot traverse through the structure and can only serve as a
//! storage, sending the client what was requested" (paper §3.1). Protocol:
//!
//! ```text
//! request  := 0x01 u64 key u32 len bytes      PUT
//!           | 0x02 u64 key                    GET
//!           | 0x03                            GET_ALL
//! response := 0x01                            PUT ok
//!           | 0x02 u32 len bytes              blob
//!           | 0x03 u32 n { u64 key; u32 len; bytes }*n
//!           | 0x04 u16 len utf8               error
//! ```

use std::collections::BTreeMap;

use simcloud_transport::RequestHandler;

/// In-memory blob store keyed by `u64`.
#[derive(Debug, Default)]
pub struct KvServer {
    blobs: BTreeMap<u64, Vec<u8>>,
}

impl KvServer {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of blobs held.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }
}

/// Client-side request encoders.
pub mod wire {
    /// Encodes a PUT.
    pub fn put(key: u64, blob: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(13 + blob.len());
        out.push(0x01);
        out.extend_from_slice(&key.to_le_bytes());
        out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
        out.extend_from_slice(blob);
        out
    }

    /// Encodes a GET.
    pub fn get(key: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(9);
        out.push(0x02);
        out.extend_from_slice(&key.to_le_bytes());
        out
    }

    /// Encodes GET_ALL.
    pub fn get_all() -> Vec<u8> {
        vec![0x03]
    }

    /// Decodes a blob response.
    pub fn decode_blob(resp: &[u8]) -> Option<Vec<u8>> {
        if resp.first() != Some(&0x02) || resp.len() < 5 {
            return None;
        }
        let len = u32::from_le_bytes(resp[1..5].try_into().unwrap()) as usize;
        if resp.len() != 5 + len {
            return None;
        }
        Some(resp[5..].to_vec())
    }

    /// Decodes a GET_ALL response into `(key, blob)` pairs.
    pub fn decode_all(resp: &[u8]) -> Option<Vec<(u64, Vec<u8>)>> {
        if resp.first() != Some(&0x03) || resp.len() < 5 {
            return None;
        }
        let n = u32::from_le_bytes(resp[1..5].try_into().unwrap()) as usize;
        let mut out = Vec::with_capacity(n);
        let mut off = 5;
        for _ in 0..n {
            if resp.len() < off + 12 {
                return None;
            }
            let key = u64::from_le_bytes(resp[off..off + 8].try_into().unwrap());
            let len = u32::from_le_bytes(resp[off + 8..off + 12].try_into().unwrap()) as usize;
            off += 12;
            if resp.len() < off + len {
                return None;
            }
            out.push((key, resp[off..off + len].to_vec()));
            off += len;
        }
        Some(out)
    }

    /// True if the response acknowledges a PUT.
    pub fn is_put_ok(resp: &[u8]) -> bool {
        resp == [0x01]
    }
}

impl RequestHandler for KvServer {
    fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        fn error(msg: &str) -> Vec<u8> {
            let mut out = vec![0x04];
            let b = msg.as_bytes();
            out.extend_from_slice(&(b.len() as u16).to_le_bytes());
            out.extend_from_slice(b);
            out
        }
        match request.first() {
            Some(0x01) => {
                if request.len() < 13 {
                    return error("short put");
                }
                let key = u64::from_le_bytes(request[1..9].try_into().unwrap());
                let len = u32::from_le_bytes(request[9..13].try_into().unwrap()) as usize;
                if request.len() != 13 + len {
                    return error("put length mismatch");
                }
                self.blobs.insert(key, request[13..].to_vec());
                vec![0x01]
            }
            Some(0x02) => {
                if request.len() != 9 {
                    return error("short get");
                }
                let key = u64::from_le_bytes(request[1..9].try_into().unwrap());
                match self.blobs.get(&key) {
                    Some(blob) => {
                        let mut out = Vec::with_capacity(5 + blob.len());
                        out.push(0x02);
                        out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
                        out.extend_from_slice(blob);
                        out
                    }
                    None => error("unknown key"),
                }
            }
            Some(0x03) => {
                let mut out = vec![0x03];
                out.extend_from_slice(&(self.blobs.len() as u32).to_le_bytes());
                for (k, blob) in &self.blobs {
                    out.extend_from_slice(&k.to_le_bytes());
                    out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
                    out.extend_from_slice(blob);
                }
                out
            }
            _ => error("unknown op"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut s = KvServer::new();
        assert!(wire::is_put_ok(&s.handle(&wire::put(7, b"hello"))));
        let resp = s.handle(&wire::get(7));
        assert_eq!(wire::decode_blob(&resp).unwrap(), b"hello");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn get_missing_is_error() {
        let mut s = KvServer::new();
        let resp = s.handle(&wire::get(9));
        assert_eq!(resp[0], 0x04);
        assert!(wire::decode_blob(&resp).is_none());
    }

    #[test]
    fn get_all_returns_everything_in_key_order() {
        let mut s = KvServer::new();
        s.handle(&wire::put(2, b"b"));
        s.handle(&wire::put(1, b"a"));
        let all = wire::decode_all(&s.handle(&wire::get_all())).unwrap();
        assert_eq!(all, vec![(1, b"a".to_vec()), (2, b"b".to_vec())]);
    }

    #[test]
    fn malformed_requests_are_errors() {
        let mut s = KvServer::new();
        assert_eq!(s.handle(&[])[0], 0x04);
        assert_eq!(s.handle(&[0x01, 1])[0], 0x04);
        assert_eq!(s.handle(&[0x09])[0], 0x04);
    }

    #[test]
    fn put_overwrites() {
        let mut s = KvServer::new();
        s.handle(&wire::put(1, b"old"));
        s.handle(&wire::put(1, b"new"));
        assert_eq!(wire::decode_blob(&s.handle(&wire::get(1))).unwrap(), b"new");
        assert_eq!(s.len(), 1);
    }
}
