//! Metric-Preserving Transformation — MPT (paper §3.2, after Yiu et al. \[4\]).
//!
//! Objects are represented server-side by their distances to `m` public
//! anchor objects, each distance encrypted with an **order-preserving
//! encryption** (OPE). The OPE must be built from "a representative sample
//! of the data collection before the indexing structure is built" (the
//! paper's §3.2 criticism — reproduced here: the OPE is fitted to sample
//! quantiles). The server can compare encrypted distances, so it filters
//! candidates by interval containment without learning true distances; the
//! client refines after decryption.
//!
//! * Range query `R(q, r)`: a true match satisfies `|d(o,a_i) − d(q,a_i)| ≤
//!   r` for every anchor, so `E(d(o,a_i)) ∈ [E(d(q,a_i)−r), E(d(q,a_i)+r)]`
//!   by order preservation. The client (which owns the OPE key) sends the
//!   `m` encrypted intervals; the server returns objects inside all of
//!   them. Complete (no false dismissals), with false positives.
//! * k-NN: radius expansion — start from a radius estimated from the OPE
//!   sample, double until ≥ k results, exact refinement on the client.
//!
//! This scheme hides distance values *and* the distribution (privacy
//! level 4 of §2.3) — at the cost the paper observes: weaker server-side
//! pruning than the Encrypted M-Index's cell structure.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use simcloud_core::{CostReport, DistanceTransform, SecretKey};
use simcloud_metric::{Metric, ObjectId, Vector};
use simcloud_transport::{InProcessTransport, RequestHandler, Stopwatch, Transport};

use crate::{Neighbor, SchemeError, SecureScheme};

/// Server half: stores `(id, encrypted anchor distances, sealed object)`
/// rows and filters by encrypted-interval containment.
///
/// Protocol:
/// ```text
/// request  := 0x01 u64 id u16 m { f64 }*m u32 len bytes     INSERT row
///           | 0x02 u16 m { f64 lo; f64 hi }*m               FILTER
/// response := 0x01                                           insert ok
///           | 0x02 u32 n { u64 id; u32 len; bytes }*n        candidates
///           | 0x04 u16 len utf8                              error
/// ```
#[derive(Debug, Default)]
pub struct MptServer {
    rows: Vec<(u64, Vec<f64>, Vec<u8>)>,
}

impl RequestHandler for MptServer {
    fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        fn error(msg: &str) -> Vec<u8> {
            let mut out = vec![0x04];
            let b = msg.as_bytes();
            out.extend_from_slice(&(b.len() as u16).to_le_bytes());
            out.extend_from_slice(b);
            out
        }
        match request.first() {
            Some(0x01) => {
                if request.len() < 11 {
                    return error("short insert");
                }
                let id = u64::from_le_bytes(request[1..9].try_into().unwrap());
                let m = u16::from_le_bytes([request[9], request[10]]) as usize;
                let mut off = 11;
                if request.len() < off + 8 * m + 4 {
                    return error("insert truncated");
                }
                let mut enc_ds = Vec::with_capacity(m);
                for _ in 0..m {
                    enc_ds.push(f64::from_le_bytes(
                        request[off..off + 8].try_into().unwrap(),
                    ));
                    off += 8;
                }
                let len = u32::from_le_bytes(request[off..off + 4].try_into().unwrap()) as usize;
                off += 4;
                if request.len() != off + len {
                    return error("insert payload mismatch");
                }
                self.rows.push((id, enc_ds, request[off..].to_vec()));
                vec![0x01]
            }
            Some(0x02) => {
                if request.len() < 3 {
                    return error("short filter");
                }
                let m = u16::from_le_bytes([request[1], request[2]]) as usize;
                if request.len() != 3 + 16 * m {
                    return error("filter size mismatch");
                }
                let mut intervals = Vec::with_capacity(m);
                for i in 0..m {
                    let off = 3 + 16 * i;
                    let lo = f64::from_le_bytes(request[off..off + 8].try_into().unwrap());
                    let hi = f64::from_le_bytes(request[off + 8..off + 16].try_into().unwrap());
                    intervals.push((lo, hi));
                }
                let mut out = vec![0x02];
                let mut count = 0u32;
                let mut body = Vec::new();
                for (id, enc_ds, sealed) in &self.rows {
                    if enc_ds.len() == m
                        && enc_ds
                            .iter()
                            .zip(&intervals)
                            .all(|(d, (lo, hi))| d >= lo && d <= hi)
                    {
                        body.extend_from_slice(&id.to_le_bytes());
                        body.extend_from_slice(&(sealed.len() as u32).to_le_bytes());
                        body.extend_from_slice(sealed);
                        count += 1;
                    }
                }
                out.extend_from_slice(&count.to_le_bytes());
                out.extend_from_slice(&body);
                out
            }
            _ => error("unknown op"),
        }
    }
}

/// MPT configuration.
#[derive(Debug, Clone, Copy)]
pub struct MptConfig {
    /// Number of anchors `m`.
    pub anchors: usize,
    /// OPE segments (irregularity of the order-preserving function).
    pub ope_segments: usize,
}

impl Default for MptConfig {
    fn default() -> Self {
        Self {
            anchors: 8,
            ope_segments: 12,
        }
    }
}

/// The MPT scheme.
pub struct MptScheme<M: Metric<Vector>> {
    key: SecretKey,
    metric: M,
    config: MptConfig,
    anchors: Vec<Vector>,
    ope: Option<DistanceTransform>,
    /// Median pairwise distance of the fitting sample — the k-NN radius
    /// expansion seed.
    seed_radius: f64,
    transport: InProcessTransport<MptServer>,
    rng: StdRng,
}

impl<M: Metric<Vector>> std::fmt::Debug for MptScheme<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MptScheme").finish_non_exhaustive()
    }
}

impl<M: Metric<Vector>> MptScheme<M> {
    /// Creates the scheme; anchors and the OPE are fitted during
    /// [`SecureScheme::build`] from the data (the sample-dependence the
    /// paper criticizes).
    pub fn new(key: SecretKey, metric: M, config: MptConfig, seed: u64) -> Self {
        Self {
            key,
            metric,
            config,
            anchors: Vec::new(),
            ope: None,
            seed_radius: 1.0,
            transport: InProcessTransport::new(MptServer::default()),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn transport_delta(
        &mut self,
        before: simcloud_transport::TransportStats,
        costs: &mut CostReport,
    ) {
        let delta = self.transport.stats().since(&before);
        costs.server += delta.server_time;
        costs.communication += delta.comm_time;
        costs.bytes_sent += delta.bytes_sent;
        costs.bytes_received += delta.bytes_received;
    }

    fn filter_request(&self, enc_intervals: &[(f64, f64)]) -> Vec<u8> {
        let mut req = vec![0x02];
        req.extend_from_slice(&(enc_intervals.len() as u16).to_le_bytes());
        for (lo, hi) in enc_intervals {
            req.extend_from_slice(&lo.to_le_bytes());
            req.extend_from_slice(&hi.to_le_bytes());
        }
        req
    }

    fn decode_candidates(resp: &[u8]) -> Result<Vec<(u64, Vec<u8>)>, SchemeError> {
        if resp.first() != Some(&0x02) || resp.len() < 5 {
            return Err(SchemeError::Protocol("bad filter response".into()));
        }
        let n = u32::from_le_bytes(resp[1..5].try_into().unwrap()) as usize;
        let mut out = Vec::with_capacity(n);
        let mut off = 5;
        for _ in 0..n {
            if resp.len() < off + 12 {
                return Err(SchemeError::Protocol("candidate truncated".into()));
            }
            let id = u64::from_le_bytes(resp[off..off + 8].try_into().unwrap());
            let len = u32::from_le_bytes(resp[off + 8..off + 12].try_into().unwrap()) as usize;
            off += 12;
            if resp.len() < off + len {
                return Err(SchemeError::Protocol("candidate payload truncated".into()));
            }
            out.push((id, resp[off..off + len].to_vec()));
            off += len;
        }
        Ok(out)
    }

    /// One filtered range pass; returns refined in-radius results.
    fn range_pass(
        &mut self,
        q: &Vector,
        q_anchor_ds: &[f64],
        radius: f64,
        costs: &mut CostReport,
    ) -> Result<Vec<Neighbor>, SchemeError> {
        let ope = self.ope.as_ref().expect("built");
        let intervals: Vec<(f64, f64)> = q_anchor_ds
            .iter()
            .map(|&d| {
                let lo = (d - radius).max(0.0);
                let hi = d + radius;
                (ope.apply(lo), ope.apply(hi))
            })
            .collect();
        let req = self.filter_request(&intervals);
        let before = self.transport.stats();
        let resp = self.transport.round_trip(&req)?;
        self.transport_delta(before, costs);
        let cands = Self::decode_candidates(&resp)?;
        costs.candidates += cands.len() as u64;
        let mut dec = Stopwatch::new();
        let mut dist = Stopwatch::new();
        let mut result = Vec::new();
        for (id, sealed) in cands {
            let plain = dec.time(|| self.key.cipher().unseal(&sealed))?;
            let (o, _) = Vector::decode(&plain)
                .map_err(|_| SchemeError::Protocol(format!("object {id} undecodable")))?;
            let d = dist.time(|| self.metric.distance(q, &o));
            costs.distance_computations += 1;
            if d <= radius {
                result.push((ObjectId(id), d));
            }
        }
        costs.decryption += dec.total();
        costs.distance += dist.total();
        result.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        Ok(result)
    }
}

impl<M: Metric<Vector>> SecureScheme for MptScheme<M> {
    fn name(&self) -> &'static str {
        "MPT"
    }

    fn build(&mut self, data: &[(ObjectId, Vector)]) -> Result<CostReport, SchemeError> {
        let mut costs = CostReport::default();
        let start = Instant::now();
        let vectors: Vec<Vector> = data.iter().map(|(_, v)| v.clone()).collect();
        // Fit anchors + OPE from the collection sample (requirement §3.2).
        let mut dist = Stopwatch::new();
        self.anchors = simcloud_metric::select_pivots(
            &vectors,
            self.config.anchors.min(vectors.len()),
            &self.metric,
            simcloud_metric::PivotSelection::Random,
            0xA2C40,
        );
        // Sample pairwise distances for d_max and the radius seed.
        let mut sample_ds = Vec::new();
        dist.time(|| {
            let step = (vectors.len() / 64).max(1);
            for i in (0..vectors.len()).step_by(step) {
                for a in &self.anchors {
                    sample_ds.push(self.metric.distance(&vectors[i], a));
                }
            }
        });
        sample_ds.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let d_max = sample_ds.last().copied().unwrap_or(1.0).max(1e-9) * 1.5;
        self.seed_radius = sample_ds
            .get(sample_ds.len() / 16)
            .copied()
            .unwrap_or(1.0)
            .max(1e-9);
        self.ope = Some(DistanceTransform::from_seed(
            0x09E5EED,
            d_max,
            self.config.ope_segments,
        ));

        let mut enc = Stopwatch::new();
        for (id, o) in data {
            let anchor_ds: Vec<f64> = dist.time(|| {
                self.anchors
                    .iter()
                    .map(|a| self.metric.distance(o, a))
                    .collect()
            });
            costs.distance_computations += self.anchors.len() as u64;
            let ope = self.ope.as_ref().unwrap();
            let enc_ds: Vec<f64> = anchor_ds.iter().map(|&d| ope.apply(d)).collect();
            let sealed = enc.time(|| {
                let mut plain = Vec::with_capacity(o.encoded_len());
                o.encode(&mut plain);
                self.key
                    .cipher()
                    .seal(&plain, self.key.mode(), &mut self.rng)
            });
            let mut req = Vec::with_capacity(11 + 8 * enc_ds.len() + 4 + sealed.len());
            req.push(0x01);
            req.extend_from_slice(&id.0.to_le_bytes());
            req.extend_from_slice(&(enc_ds.len() as u16).to_le_bytes());
            for d in &enc_ds {
                req.extend_from_slice(&d.to_le_bytes());
            }
            req.extend_from_slice(&(sealed.len() as u32).to_le_bytes());
            req.extend_from_slice(&sealed);
            let before = self.transport.stats();
            let resp = self.transport.round_trip(&req)?;
            self.transport_delta(before, &mut costs);
            if resp != [0x01] {
                return Err(SchemeError::Protocol("insert rejected".into()));
            }
        }
        costs.encryption = enc.total();
        costs.distance = dist.total();
        costs.client = start.elapsed().saturating_sub(costs.server);
        Ok(costs)
    }

    fn knn(&mut self, q: &Vector, k: usize) -> Result<(Vec<Neighbor>, CostReport), SchemeError> {
        assert!(self.ope.is_some(), "build() must run before knn()");
        let mut costs = CostReport::default();
        let start = Instant::now();
        let mut dist = Stopwatch::new();
        let q_anchor_ds: Vec<f64> = dist.time(|| {
            self.anchors
                .iter()
                .map(|a| self.metric.distance(q, a))
                .collect()
        });
        costs.distance_computations += self.anchors.len() as u64;
        costs.distance += dist.total();

        // Radius expansion until k results (exact: the final pass's range
        // filter is complete for its radius, and we only stop once k are
        // inside the radius — their distances certify correctness).
        let mut radius = self.seed_radius;
        let mut result = Vec::new();
        for _ in 0..32 {
            result = self.range_pass(q, &q_anchor_ds, radius, &mut costs)?;
            if result.len() >= k {
                break;
            }
            radius *= 2.0;
        }
        result.truncate(k);
        costs.client = start.elapsed().saturating_sub(costs.server);
        Ok((result, costs))
    }

    fn is_exact(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use simcloud_metric::{PivotSelection, L2};

    fn data(n: usize, seed: u64) -> Vec<(ObjectId, Vector)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    ObjectId(i as u64),
                    Vector::new(vec![
                        rng.gen_range(-4.0..4.0),
                        rng.gen_range(-4.0..4.0),
                        rng.gen_range(-4.0..4.0),
                    ]),
                )
            })
            .collect()
    }

    fn brute(data: &[(ObjectId, Vector)], q: &Vector, k: usize) -> Vec<Neighbor> {
        let mut v: Vec<Neighbor> = data
            .iter()
            .map(|(id, o)| (*id, simcloud_metric::Metric::distance(&L2, q, o)))
            .collect();
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    #[test]
    fn mpt_knn_is_exact() {
        let d = data(150, 5);
        let vectors: Vec<Vector> = d.iter().map(|(_, v)| v.clone()).collect();
        let (key, _) = SecretKey::generate(&vectors, 2, &L2, PivotSelection::Random, 6);
        let mut scheme = MptScheme::new(key, L2, MptConfig::default(), 7);
        scheme.build(&d).unwrap();
        for qi in [0usize, 60, 120] {
            let q = &d[qi].1;
            let (got, _) = scheme.knn(q, 4).unwrap();
            let want = brute(&d, q, 4);
            assert_eq!(got.len(), 4, "query {qi}");
            for (g, w) in got.iter().zip(&want) {
                assert!((g.1 - w.1).abs() < 1e-9, "query {qi}: {got:?} vs {want:?}");
            }
        }
    }

    #[test]
    fn mpt_filters_candidates() {
        let d = data(300, 9);
        let vectors: Vec<Vector> = d.iter().map(|(_, v)| v.clone()).collect();
        let (key, _) = SecretKey::generate(&vectors, 2, &L2, PivotSelection::Random, 10);
        let mut scheme = MptScheme::new(key, L2, MptConfig::default(), 11);
        scheme.build(&d).unwrap();
        let q = &d[0].1;
        let (_, costs) = scheme.knn(q, 1).unwrap();
        assert!(
            costs.candidates < 300,
            "anchor filtering should prune: {} candidates",
            costs.candidates
        );
    }

    #[test]
    fn server_interval_filter_logic() {
        let mut server = MptServer::default();
        // insert row with enc distances [5.0, 10.0]
        let mut req = vec![0x01];
        req.extend_from_slice(&1u64.to_le_bytes());
        req.extend_from_slice(&2u16.to_le_bytes());
        req.extend_from_slice(&5.0f64.to_le_bytes());
        req.extend_from_slice(&10.0f64.to_le_bytes());
        req.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(server.handle(&req), vec![0x01]);
        // filter matching
        let mk_filter = |lo1: f64, hi1: f64, lo2: f64, hi2: f64| {
            let mut f = vec![0x02];
            f.extend_from_slice(&2u16.to_le_bytes());
            f.extend_from_slice(&lo1.to_le_bytes());
            f.extend_from_slice(&hi1.to_le_bytes());
            f.extend_from_slice(&lo2.to_le_bytes());
            f.extend_from_slice(&hi2.to_le_bytes());
            f
        };
        let hit = server.handle(&mk_filter(4.0, 6.0, 9.0, 11.0));
        assert_eq!(u32::from_le_bytes(hit[1..5].try_into().unwrap()), 1);
        let miss = server.handle(&mk_filter(4.0, 6.0, 11.0, 12.0));
        assert_eq!(u32::from_le_bytes(miss[1..5].try_into().unwrap()), 0);
    }
}
