//! Encrypted Hierarchical Index — EHI (paper §3.1, after Yiu et al. \[4\]).
//!
//! A ball-tree-like metric tree is built client-side; every node is sealed
//! into an individually encrypted blob and PUT to a dumb blob store. Search
//! logic runs entirely on the client: best-first traversal, one round trip
//! per visited node, decrypting each node to decide where to descend.
//! Exact k-NN via the standard lower-bound argument
//! `lb(node) = max(0, d(q, center) − radius)`.
//!
//! The paper's critique, reproduced measurably here: "a lot of traffic is
//! between client and the server … the client has to perform a lot of
//! encryption/decryption operations" — compare the round-trip and byte
//! counts with the Encrypted M-Index in Table 9.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use simcloud_core::{CostReport, SecretKey};
use simcloud_metric::{Metric, ObjectId, Vector};
use simcloud_transport::{InProcessTransport, Stopwatch, Transport};

use crate::kv::{wire, KvServer};
use crate::{Neighbor, SchemeError, SecureScheme};

const ROOT_KEY: u64 = 0;

/// Plaintext node structure (sealed as one blob per node).
enum PlainNode {
    Internal(Vec<ChildRef>),
    Leaf(Vec<(u64, Vector)>),
}

struct ChildRef {
    node_key: u64,
    center: Vector,
    radius: f64,
}

fn encode_node(node: &PlainNode) -> Vec<u8> {
    let mut out = Vec::new();
    match node {
        PlainNode::Internal(children) => {
            out.push(1);
            out.extend_from_slice(&(children.len() as u32).to_le_bytes());
            for c in children {
                out.extend_from_slice(&c.node_key.to_le_bytes());
                out.extend_from_slice(&c.radius.to_le_bytes());
                c.center.encode(&mut out);
            }
        }
        PlainNode::Leaf(objs) => {
            out.push(2);
            out.extend_from_slice(&(objs.len() as u32).to_le_bytes());
            for (id, v) in objs {
                out.extend_from_slice(&id.to_le_bytes());
                v.encode(&mut out);
            }
        }
    }
    out
}

fn decode_node(buf: &[u8]) -> Option<PlainNode> {
    match buf.first()? {
        1 => {
            let n = u32::from_le_bytes(buf.get(1..5)?.try_into().ok()?) as usize;
            let mut off = 5;
            let mut children = Vec::with_capacity(n);
            for _ in 0..n {
                let node_key = u64::from_le_bytes(buf.get(off..off + 8)?.try_into().ok()?);
                let radius = f64::from_le_bytes(buf.get(off + 8..off + 16)?.try_into().ok()?);
                off += 16;
                let (center, used) = Vector::decode(&buf[off..]).ok()?;
                off += used;
                children.push(ChildRef {
                    node_key,
                    center,
                    radius,
                });
            }
            Some(PlainNode::Internal(children))
        }
        2 => {
            let n = u32::from_le_bytes(buf.get(1..5)?.try_into().ok()?) as usize;
            let mut off = 5;
            let mut objs = Vec::with_capacity(n);
            for _ in 0..n {
                let id = u64::from_le_bytes(buf.get(off..off + 8)?.try_into().ok()?);
                off += 8;
                let (v, used) = Vector::decode(&buf[off..]).ok()?;
                off += used;
                objs.push((id, v));
            }
            Some(PlainNode::Leaf(objs))
        }
        _ => None,
    }
}

/// EHI configuration.
#[derive(Debug, Clone, Copy)]
pub struct EhiConfig {
    /// Fan-out of internal nodes.
    pub fanout: usize,
    /// Maximum leaf size.
    pub leaf_size: usize,
}

impl Default for EhiConfig {
    fn default() -> Self {
        Self {
            fanout: 8,
            leaf_size: 16,
        }
    }
}

/// The EHI scheme.
pub struct EhiScheme<M: Metric<Vector>> {
    key: SecretKey,
    metric: M,
    config: EhiConfig,
    transport: InProcessTransport<KvServer>,
    rng: StdRng,
    next_key: u64,
}

impl<M: Metric<Vector>> std::fmt::Debug for EhiScheme<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EhiScheme").finish_non_exhaustive()
    }
}

impl<M: Metric<Vector>> EhiScheme<M> {
    /// Creates the scheme with an in-process blob server.
    pub fn new(key: SecretKey, metric: M, config: EhiConfig, seed: u64) -> Self {
        Self {
            key,
            metric,
            config,
            transport: InProcessTransport::new(KvServer::new()),
            rng: StdRng::seed_from_u64(seed),
            next_key: 1,
        }
    }

    fn alloc_key(&mut self) -> u64 {
        let k = self.next_key;
        self.next_key += 1;
        k
    }

    /// Recursive balanced clustering: pick `fanout` spread-out centers,
    /// assign objects to the closest, recurse.
    fn build_tree(
        &mut self,
        node_key: u64,
        objs: Vec<(u64, Vector)>,
        out: &mut Vec<(u64, PlainNode)>,
    ) {
        if objs.len() <= self.config.leaf_size {
            out.push((node_key, PlainNode::Leaf(objs)));
            return;
        }
        // Farthest-first centers for spread (deterministic from first obj).
        let mut centers: Vec<Vector> = vec![objs[0].1.clone()];
        while centers.len() < self.config.fanout.min(objs.len()) {
            let far = objs
                .iter()
                .max_by(|a, b| {
                    let da = centers
                        .iter()
                        .map(|c| self.metric.distance(&a.1, c))
                        .fold(f64::INFINITY, f64::min);
                    let db = centers
                        .iter()
                        .map(|c| self.metric.distance(&b.1, c))
                        .fold(f64::INFINITY, f64::min);
                    da.partial_cmp(&db).unwrap_or(Ordering::Equal)
                })
                .unwrap()
                .1
                .clone();
            centers.push(far);
        }
        let mut groups: Vec<Vec<(u64, Vector)>> = vec![Vec::new(); centers.len()];
        for (id, v) in objs {
            let (gi, _) = centers
                .iter()
                .enumerate()
                .map(|(i, c)| (i, self.metric.distance(&v, c)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal))
                .unwrap();
            groups[gi].push((id, v));
        }
        let mut children = Vec::new();
        for (gi, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            // Degenerate split (all in one group): force a leaf to end the
            // recursion even above leaf_size.
            let child_key = self.alloc_key();
            let radius = group
                .iter()
                .map(|(_, v)| self.metric.distance(v, &centers[gi]))
                .fold(0.0f64, f64::max);
            children.push(ChildRef {
                node_key: child_key,
                center: centers[gi].clone(),
                radius,
            });
            self.build_tree_or_leaf(child_key, group, out);
        }
        out.push((node_key, PlainNode::Internal(children)));
    }

    fn build_tree_or_leaf(
        &mut self,
        node_key: u64,
        group: Vec<(u64, Vector)>,
        out: &mut Vec<(u64, PlainNode)>,
    ) {
        // Guard against non-progress: if clustering cannot split (all
        // identical objects), emit a leaf regardless of size.
        let all_same = group.windows(2).all(|w| w[0].1 == w[1].1);
        if all_same || group.len() <= self.config.leaf_size {
            out.push((node_key, PlainNode::Leaf(group)));
        } else {
            self.build_tree(node_key, group, out);
        }
    }

    fn transport_delta(
        &mut self,
        before: simcloud_transport::TransportStats,
        costs: &mut CostReport,
    ) {
        let delta = self.transport.stats().since(&before);
        costs.server += delta.server_time;
        costs.communication += delta.comm_time;
        costs.bytes_sent += delta.bytes_sent;
        costs.bytes_received += delta.bytes_received;
    }

    /// Round trips performed so far (Table 9 discussion point).
    pub fn round_trips(&self) -> u64 {
        self.transport.stats().requests
    }
}

impl<M: Metric<Vector>> SecureScheme for EhiScheme<M> {
    fn name(&self) -> &'static str {
        "EHI"
    }

    fn build(&mut self, data: &[(ObjectId, Vector)]) -> Result<CostReport, SchemeError> {
        let mut costs = CostReport::default();
        let start = Instant::now();
        let objs: Vec<(u64, Vector)> = data.iter().map(|(id, v)| (id.0, v.clone())).collect();
        let mut nodes = Vec::new();
        let mut dist = Stopwatch::new();
        dist.time(|| self.build_tree_or_leaf(ROOT_KEY, objs, &mut nodes));
        let mut enc = Stopwatch::new();
        for (key, node) in nodes {
            let plain = encode_node(&node);
            let sealed = enc.time(|| {
                self.key
                    .cipher()
                    .seal(&plain, self.key.mode(), &mut self.rng)
            });
            let before = self.transport.stats();
            let resp = self.transport.round_trip(&wire::put(key, &sealed))?;
            self.transport_delta(before, &mut costs);
            if !wire::is_put_ok(&resp) {
                return Err(SchemeError::Protocol("put rejected".into()));
            }
        }
        costs.encryption = enc.total();
        costs.distance = dist.total();
        costs.client = start.elapsed().saturating_sub(costs.server);
        Ok(costs)
    }

    fn knn(&mut self, q: &Vector, k: usize) -> Result<(Vec<Neighbor>, CostReport), SchemeError> {
        let mut costs = CostReport::default();
        let start = Instant::now();
        let mut dec = Stopwatch::new();
        let mut dist = Stopwatch::new();
        let mut dc = 0u64;

        // Best-first search over (lower_bound, node_key).
        struct Q(f64, u64);
        impl PartialEq for Q {
            fn eq(&self, o: &Self) -> bool {
                self.0 == o.0 && self.1 == o.1
            }
        }
        impl Eq for Q {}
        impl PartialOrd for Q {
            fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for Q {
            fn cmp(&self, o: &Self) -> Ordering {
                o.0.partial_cmp(&self.0)
                    .unwrap_or(Ordering::Equal)
                    .then(o.1.cmp(&self.1))
            }
        }
        let mut heap = BinaryHeap::new();
        heap.push(Q(0.0, ROOT_KEY));
        let mut result: Vec<Neighbor> = Vec::new();
        let kth = |r: &Vec<Neighbor>| {
            if r.len() < k {
                f64::INFINITY
            } else {
                r[k - 1].1
            }
        };
        while let Some(Q(lb, node_key)) = heap.pop() {
            if lb > kth(&result) {
                break; // no node can improve the answer
            }
            let before = self.transport.stats();
            let resp = self.transport.round_trip(&wire::get(node_key))?;
            self.transport_delta(before, &mut costs);
            let sealed =
                wire::decode_blob(&resp).ok_or_else(|| SchemeError::Protocol("bad blob".into()))?;
            let plain = dec.time(|| self.key.cipher().unseal(&sealed))?;
            let node = decode_node(&plain)
                .ok_or_else(|| SchemeError::Protocol("node undecodable".into()))?;
            match node {
                PlainNode::Internal(children) => {
                    for c in children {
                        let d = dist.time(|| self.metric.distance(q, &c.center));
                        dc += 1;
                        let lb = (d - c.radius).max(0.0);
                        if lb <= kth(&result) {
                            heap.push(Q(lb, c.node_key));
                        }
                    }
                }
                PlainNode::Leaf(objs) => {
                    for (id, v) in objs {
                        let d = dist.time(|| self.metric.distance(q, &v));
                        dc += 1;
                        result.push((ObjectId(id), d));
                    }
                    result.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
                    result.truncate(k);
                }
            }
        }
        costs.decryption = dec.total();
        costs.distance = dist.total();
        costs.distance_computations = dc;
        costs.client = start.elapsed().saturating_sub(costs.server);
        Ok((result, costs))
    }

    fn is_exact(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use simcloud_metric::{PivotSelection, L2};

    fn data(n: usize, seed: u64) -> Vec<(ObjectId, Vector)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    ObjectId(i as u64),
                    Vector::new(vec![rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)]),
                )
            })
            .collect()
    }

    fn brute(data: &[(ObjectId, Vector)], q: &Vector, k: usize) -> Vec<Neighbor> {
        let mut v: Vec<Neighbor> = data
            .iter()
            .map(|(id, o)| (*id, simcloud_metric::Metric::distance(&L2, q, o)))
            .collect();
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    #[test]
    fn ehi_knn_is_exact() {
        let d = data(200, 1);
        let vectors: Vec<Vector> = d.iter().map(|(_, v)| v.clone()).collect();
        let (key, _) = SecretKey::generate(&vectors, 2, &L2, PivotSelection::Random, 2);
        let mut scheme = EhiScheme::new(key, L2, EhiConfig::default(), 3);
        scheme.build(&d).unwrap();
        for qi in [0usize, 50, 150] {
            let q = &d[qi].1;
            let (got, _) = scheme.knn(q, 5).unwrap();
            let want = brute(&d, q, 5);
            for (g, w) in got.iter().zip(&want) {
                assert!((g.1 - w.1).abs() < 1e-9, "query {qi}: {got:?} vs {want:?}");
            }
        }
    }

    #[test]
    fn ehi_visits_fewer_nodes_than_trivial_bytes() {
        let d = data(400, 7);
        let vectors: Vec<Vector> = d.iter().map(|(_, v)| v.clone()).collect();
        let (key, _) = SecretKey::generate(&vectors, 2, &L2, PivotSelection::Random, 8);
        let mut scheme = EhiScheme::new(key, L2, EhiConfig::default(), 9);
        scheme.build(&d).unwrap();
        let build_rts = scheme.round_trips();
        let q = &d[10].1;
        let (res, costs) = scheme.knn(q, 1).unwrap();
        assert_eq!(res[0].0, d[10].0);
        let query_rts = scheme.round_trips() - build_rts;
        assert!(query_rts > 1, "EHI must do multiple round trips");
        assert!(
            costs.bytes_received < 400 * 2 * 4, // far less than all vectors
            "EHI should not download everything: {} bytes",
            costs.bytes_received
        );
    }

    #[test]
    fn ehi_handles_duplicates() {
        let v = Vector::new(vec![1.0, 1.0]);
        let d: Vec<(ObjectId, Vector)> = (0..50).map(|i| (ObjectId(i), v.clone())).collect();
        let (key, _) =
            SecretKey::generate(std::slice::from_ref(&v), 1, &L2, PivotSelection::Random, 1);
        let mut scheme = EhiScheme::new(key, L2, EhiConfig::default(), 2);
        scheme.build(&d).unwrap();
        let (got, _) = scheme.knn(&v, 10).unwrap();
        assert_eq!(got.len(), 10);
        assert!(got.iter().all(|(_, dd)| *dd == 0.0));
    }
}
