//! Multi-shard TCP deployment: the sharded server behind a real loopback
//! socket, driven by the unmodified TCP client — including concurrent
//! connections that insert into distinct shards while others search.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcloud_core::{connect_tcp, ClientConfig, SecretKey};
use simcloud_metric::{ObjectId, PivotSelection, Vector, L2};
use simcloud_mindex::{MIndexConfig, RoutingStrategy};
use simcloud_shard::{
    memory_stores, over_tcp_sharded, serve_tcp_concurrent_sharded, HashRouter, ShardedCloudServer,
};

fn data(n: usize, dim: usize, seed: u64) -> Vec<Vector> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Vector::new((0..dim).map(|_| rng.gen_range(-5.0f32..5.0)).collect()))
        .collect()
}

fn config(pivots: usize) -> MIndexConfig {
    MIndexConfig {
        num_pivots: pivots,
        max_level: 2,
        bucket_capacity: 8,
        strategy: RoutingStrategy::Distances,
    }
}

#[test]
fn sharded_over_tcp_round_trip() {
    let vectors = data(60, 3, 42);
    let (key, _) = SecretKey::generate(&vectors, 4, &L2, PivotSelection::Random, 7);
    let (mut client, handle) = over_tcp_sharded(
        key,
        L2,
        config(4),
        Box::new(HashRouter),
        memory_stores(4),
        ClientConfig::distances(),
    )
    .unwrap();
    let objects: Vec<(ObjectId, Vector)> = vectors
        .iter()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v.clone()))
        .collect();
    client.insert_bulk(&objects).unwrap();
    let (entries, _, _) = client.server_info().unwrap();
    assert_eq!(entries, 60);
    let (res, costs) = client.knn_approx(&vectors[5], 3, 30).unwrap();
    assert_eq!(res[0].0, ObjectId(5));
    assert_eq!(res[0].1, 0.0);
    assert!(costs.candidates <= 30);
    let (in_ball, _) = client.range(&vectors[5], 0.0).unwrap();
    assert!(in_ball.iter().any(|(id, _)| *id == ObjectId(5)));
    drop(client);
    handle.shutdown();
}

/// Four TCP connections insert disjoint id ranges concurrently (landing on
/// different shards) while a fifth searches throughout — the scatter-gather
/// read path and per-shard write locks under real socket concurrency.
#[test]
fn concurrent_tcp_inserts_and_searches_against_shards() {
    let vectors = data(40, 3, 43);
    let (key, _) = SecretKey::generate(&vectors, 4, &L2, PivotSelection::Random, 11);
    let server = Arc::new(
        ShardedCloudServer::new(config(4), Box::new(HashRouter), memory_stores(4)).unwrap(),
    );
    let handle = serve_tcp_concurrent_sharded(Arc::clone(&server)).unwrap();
    let addr = handle.addr();

    // Seed the index so searches always have data.
    let mut seeder = connect_tcp(key.clone(), L2, addr, ClientConfig::distances()).unwrap();
    let objects: Vec<(ObjectId, Vector)> = vectors
        .iter()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v.clone()))
        .collect();
    seeder.insert_bulk(&objects).unwrap();

    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let key = key.clone();
            let extra = data(25, 3, 100 + t);
            scope.spawn(move || {
                let mut c = connect_tcp(key, L2, addr, ClientConfig::distances()).unwrap();
                for (i, v) in extra.iter().enumerate() {
                    let id = ObjectId(1000 + t * 1000 + i as u64);
                    c.insert(id, v).unwrap();
                }
            });
        }
        let key = key.clone();
        let q = vectors[3].clone();
        scope.spawn(move || {
            let mut c = connect_tcp(key, L2, addr, ClientConfig::distances()).unwrap();
            for _ in 0..30 {
                let (res, _) = c.knn_approx(&q, 3, 20).unwrap();
                assert!(!res.is_empty());
                assert_eq!(res[0].0, ObjectId(3), "existing nearest stays found");
            }
        });
    });

    let (entries, _, _) = seeder.server_info().unwrap();
    assert_eq!(entries, 40 + 4 * 25);
    // Every shard received some of the hash-routed inserts.
    for i in 0..4 {
        assert!(
            server.index().shard(i).is_some_and(|s| !s.is_empty()),
            "shard {i} never saw an insert"
        );
    }
    drop(seeder);
    handle.shutdown();
}

/// A mixed-outcome `BatchKnn` over the sharded TCP wire: the malformed
/// sub-query fails in its own slot, healthy siblings answer, and the
/// server's batch stats cover only the successes — same contract as the
/// single server.
#[test]
fn sharded_batch_with_malformed_subquery_over_tcp() {
    use simcloud_core::protocol::{KnnQuery, Request, Response};
    use simcloud_mindex::Routing;
    use simcloud_transport::{TcpTransport, Transport};

    let vectors = data(30, 3, 44);
    let (key, _) = SecretKey::generate(&vectors, 4, &L2, PivotSelection::Random, 13);
    let server = Arc::new(
        ShardedCloudServer::new(config(4), Box::new(HashRouter), memory_stores(3)).unwrap(),
    );
    let handle = serve_tcp_concurrent_sharded(Arc::clone(&server)).unwrap();
    let mut owner = connect_tcp(key, L2, handle.addr(), ClientConfig::distances()).unwrap();
    let objects: Vec<(ObjectId, Vector)> = vectors
        .iter()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v.clone()))
        .collect();
    owner.insert_bulk(&objects).unwrap();

    let mut raw = TcpTransport::connect(handle.addr()).unwrap();
    let batch = Request::BatchKnn(vec![
        KnnQuery {
            routing: Routing::from_distances(&[0.5, 0.5, 0.5, 0.5]),
            cand_size: 8,
        },
        KnnQuery {
            // Short distance vector: must fail in its own slot.
            routing: Routing::from_distances(&[0.5, 0.5]),
            cand_size: 8,
        },
        KnnQuery {
            routing: Routing::from_distances(&[1.0, 1.0, 1.0, 1.0]),
            cand_size: 4,
        },
    ]);
    let resp = Response::decode(&raw.round_trip(&batch.encode()).unwrap()).unwrap();
    match resp {
        Response::CandidateSets(sets) => {
            assert_eq!(sets.len(), 3);
            assert_eq!(sets[0].as_ref().unwrap().headers.len(), 8);
            assert!(sets[1].as_ref().unwrap_err().contains("pivot distances"));
            assert_eq!(sets[2].as_ref().unwrap().headers.len(), 4);
        }
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(
        server.last_search_stats().candidates,
        12,
        "batch stats cover exactly the successful sub-queries"
    );
    drop(owner);
    handle.shutdown();
}
