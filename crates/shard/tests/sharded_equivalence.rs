//! Sharding must be **invisible in the answers**: an unmodified
//! `EncryptedClient` (lazy refinement, phase-2 fetches and all) driven
//! against a `ShardedCloudServer` returns byte-identical results to the
//! same client driven against a single `CloudServer` holding the same
//! data.
//!
//! * Range queries are compared at **every** radius and candidate budget —
//!   exactness is structural (per-shard pruning is triangle-inequality
//!   safe, the merge is a union, refinement is exact).
//! * Approximate k-NN is compared with `cand_size ≥ n`, where the merged
//!   candidate multiset provably coincides with the single index's (both
//!   are "everything, ranked by the same wire bound") — the regime where
//!   the paper's candidate-set approximation drops out and the comparison
//!   is exact. Smaller `cand_size` runs are checked for internal
//!   consistency (k results, sorted, true distances).

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcloud_core::{
    client_for, ClientConfig, CloudServer, Neighbor, SecretKey, ServerConfig, SharedCloud,
};
use simcloud_metric::{Metric, ObjectId, PivotSelection, Vector, L2};
use simcloud_mindex::{MIndexConfig, RoutingStrategy};
use simcloud_shard::{
    client_for_sharded, memory_stores, HashRouter, PivotRouter, ShardRouter, ShardedCloudServer,
    SharedShardedCloud,
};
use simcloud_storage::MemoryStore;

/// Random data with deliberate duplicates so k-th-distance ties are common
/// (the early exit's strict comparison and the merge's tie-breaking both
/// get exercised).
fn data_with_ties(n: usize, dim: usize, seed: u64) -> Vec<Vector> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Vector> = Vec::with_capacity(n);
    for i in 0..n {
        if i % 4 == 3 {
            let j = rng.gen_range(0..out.len());
            out.push(out[j].clone());
        } else {
            out.push(Vector::new(
                (0..dim).map(|_| rng.gen_range(-5.0..5.0)).collect(),
            ));
        }
    }
    out
}

/// Twin deployments over identical data: one single-index server, one
/// sharded server, same key, same insert order.
struct Twins {
    single: Arc<CloudServer<MemoryStore>>,
    sharded: Arc<ShardedCloudServer<MemoryStore>>,
    key: SecretKey,
    data: Vec<Vector>,
}

fn build_twins(
    n: usize,
    dim: usize,
    pivots: usize,
    seed: u64,
    shards: usize,
    router: Box<dyn ShardRouter>,
    server_config: ServerConfig,
) -> Twins {
    let data = data_with_ties(n, dim, seed);
    let (key, _) = SecretKey::generate(&data, pivots, &L2, PivotSelection::Random, seed ^ 0xfeed);
    let config = MIndexConfig {
        num_pivots: pivots,
        max_level: 2.min(pivots),
        bucket_capacity: 16,
        strategy: RoutingStrategy::Distances,
    };
    let single =
        Arc::new(CloudServer::with_config(config, server_config, MemoryStore::new()).unwrap());
    let sharded = Arc::new(
        ShardedCloudServer::with_config(config, server_config, router, memory_stores(shards))
            .unwrap(),
    );
    let objects: Vec<(ObjectId, Vector)> = data
        .iter()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v.clone()))
        .collect();
    let mut owner_single = client_for(
        key.clone(),
        L2,
        Arc::clone(&single),
        ClientConfig::distances(),
    )
    .with_rng_seed(seed ^ 1);
    owner_single.insert_bulk(&objects).unwrap();
    let mut owner_sharded = client_for_sharded(
        key.clone(),
        L2,
        Arc::clone(&sharded),
        ClientConfig::distances(),
    )
    .with_rng_seed(seed ^ 1);
    owner_sharded.insert_bulk(&objects).unwrap();
    Twins {
        single,
        sharded,
        key,
        data,
    }
}

fn single_client(t: &Twins, seed: u64) -> SharedCloud<L2, MemoryStore> {
    client_for(
        t.key.clone(),
        L2,
        Arc::clone(&t.single),
        ClientConfig::distances(),
    )
    .with_rng_seed(seed)
}

fn sharded_client(t: &Twins, seed: u64) -> SharedShardedCloud<L2, MemoryStore> {
    client_for_sharded(
        t.key.clone(),
        L2,
        Arc::clone(&t.sharded),
        ClientConfig::distances(),
    )
    .with_rng_seed(seed)
}

/// Bit-exact comparison: same ids in the same order, same distance bits.
fn assert_identical(sharded: &[Neighbor], single: &[Neighbor]) -> Result<(), TestCaseError> {
    prop_assert_eq!(sharded.len(), single.len());
    for ((si, sd), (ri, rd)) in sharded.iter().zip(single) {
        prop_assert_eq!(si, ri);
        prop_assert_eq!(sd.to_bits(), rd.to_bits());
    }
    Ok(())
}

fn router_for(pivot: bool) -> Box<dyn ShardRouter> {
    if pivot {
        Box::new(PivotRouter)
    } else {
        Box::new(HashRouter)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// k-NN with a collection-covering candidate budget: sharded answers
    /// are byte-identical to the single index's, through lazy refinement
    /// and (when the inline budget is tight) real phase-2 fetches.
    #[test]
    fn sharded_knn_equals_single(
        seed in 0u64..10_000,
        n in 24usize..96,
        dim in 1usize..4,
        pivots in 2usize..8,
        k in 1usize..16,
        shards in 2usize..5,
        pivot_router in any::<bool>(),
        budgeted in any::<bool>(),
    ) {
        let server_config = if budgeted {
            // Headers always ship; a ~4-payload budget forces the lazy
            // loop through FetchObjects round trips.
            ServerConfig::budgeted(1 + 4 + 16 * n + 4 + 4 * 120)
        } else {
            ServerConfig::default()
        };
        let t = build_twins(n, dim, pivots, seed, shards, router_for(pivot_router), server_config);
        let queries: Vec<Vector> = {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabc);
            (0..4).map(|_| {
                let base = &t.data[rng.gen_range(0..t.data.len())];
                Vector::new(base.as_slice().iter().map(|&c| c + rng.gen_range(-0.5f32..0.5)).collect())
            }).collect()
        };
        let mut s1 = single_client(&t, seed ^ 2);
        let mut s2 = sharded_client(&t, seed ^ 3);
        for q in &queries {
            let (single_ans, single_costs) = s1.knn_approx(q, k, n).unwrap();
            let (sharded_ans, sharded_costs) = s2.knn_approx(q, k, n).unwrap();
            assert_identical(&sharded_ans, &single_ans)?;
            // Collection-covering budgets must yield equal candidate counts.
            prop_assert_eq!(sharded_costs.candidates, single_costs.candidates);
            // Under a tight budget the lazy loop either exits inside the
            // inlined prefix or pulls the rest through phase-2 fetches;
            // either way the answers above already proved the wire
            // equivalent. Sanity: fetches never exceed decryptions.
            prop_assert!(sharded_costs.fetched <= sharded_costs.decrypted.max(single_costs.candidates));
        }
    }

    /// Range queries: byte-identical at *every* cand budget and radius —
    /// including radii with boundary ties — for both routers.
    #[test]
    fn sharded_range_equals_single(
        seed in 0u64..10_000,
        n in 24usize..96,
        dim in 1usize..4,
        pivots in 2usize..8,
        shards in 2usize..5,
        pivot_router in any::<bool>(),
        budgeted in any::<bool>(),
        radius_scale in 0.0f64..1.5,
    ) {
        let server_config = if budgeted {
            ServerConfig::budgeted(1 + 4 + 16 * n + 4 + 2 * 120)
        } else {
            ServerConfig::default()
        };
        let t = build_twins(n, dim, pivots, seed, shards, router_for(pivot_router), server_config);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdef);
        let q = t.data[rng.gen_range(0..t.data.len())].clone();
        // A radius at an *exact* data distance exercises the boundary rule.
        let exact_d = L2.distance(&q, &t.data[rng.gen_range(0..t.data.len())]);
        let radius = exact_d * radius_scale;
        let mut s1 = single_client(&t, seed ^ 2);
        let mut s2 = sharded_client(&t, seed ^ 3);
        let (single_ans, _) = s1.range(&q, radius).unwrap();
        let (sharded_ans, _) = s2.range(&q, radius).unwrap();
        assert_identical(&sharded_ans, &single_ans)?;
        let (single_b, _) = s1.range(&q, exact_d).unwrap();
        let (sharded_b, _) = s2.range(&q, exact_d).unwrap();
        assert_identical(&sharded_b, &single_b)?;
    }

    /// The batch API answers per-slot identically too (one round trip, many
    /// queries, shared scatter-gather server).
    #[test]
    fn sharded_batch_knn_equals_single(
        seed in 0u64..10_000,
        n in 24usize..72,
        dim in 1usize..4,
        pivots in 2usize..7,
        k in 1usize..10,
        shards in 2usize..5,
    ) {
        let t = build_twins(n, dim, pivots, seed, shards, Box::new(HashRouter),
            ServerConfig::default());
        let queries: Vec<Vector> = t.data.iter().take(5).cloned().collect();
        let mut s1 = single_client(&t, seed ^ 2);
        let mut s2 = sharded_client(&t, seed ^ 3);
        let (single_res, _) = s1.knn_approx_batch(&queries, k, n).unwrap();
        let (sharded_res, _) = s2.knn_approx_batch(&queries, k, n).unwrap();
        prop_assert_eq!(single_res.len(), sharded_res.len());
        for (a, b) in sharded_res.iter().zip(&single_res) {
            assert_identical(a.as_ref().unwrap(), b.as_ref().unwrap())?;
        }
    }

    /// Small candidate budgets are the regime where sharded and single
    /// candidate *sets* may legitimately differ; the sharded answer must
    /// still be internally exact: k true nearest of its candidate set,
    /// sorted by (distance, id), distances bit-equal to recomputation.
    #[test]
    fn sharded_small_cand_answers_are_well_formed(
        seed in 0u64..10_000,
        n in 32usize..96,
        dim in 1usize..4,
        pivots in 3usize..8,
        k in 1usize..8,
        shards in 2usize..5,
        pivot_router in any::<bool>(),
    ) {
        let t = build_twins(n, dim, pivots, seed, shards, router_for(pivot_router),
            ServerConfig::default());
        let mut s2 = sharded_client(&t, seed ^ 3);
        let q = t.data[seed as usize % t.data.len()].clone();
        let cand = (n / 3).max(k);
        let (ans, costs) = s2.knn_approx(&q, k, cand).unwrap();
        prop_assert_eq!(ans.len(), k.min(costs.candidates as usize));
        prop_assert!(costs.candidates <= cand as u64, "merge must cap at cand_size");
        for w in ans.windows(2) {
            prop_assert!(w[0].1 < w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0));
        }
        for (id, d) in &ans {
            let true_d = L2.distance(&q, &t.data[id.0 as usize]);
            prop_assert_eq!(d.to_bits(), true_d.to_bits());
        }
    }
}

/// Export + rekey: the data-owner path works unchanged against a sharded
/// deployment (ExportAll concatenates shards; the client sorts by id).
#[test]
fn export_all_and_rekey_from_sharded() {
    let t = build_twins(
        40,
        3,
        4,
        99,
        3,
        Box::new(HashRouter),
        ServerConfig::default(),
    );
    let mut owner = sharded_client(&t, 7);
    let (objects, _) = owner.export_all().unwrap();
    assert_eq!(objects.len(), t.data.len());
    for (i, (id, v)) in objects.iter().enumerate() {
        assert_eq!(id.0, i as u64);
        assert_eq!(v, &t.data[i]);
    }
    // Rekey into a fresh single-index deployment: sharded → single round
    // trips through the same client API.
    let (new_key, _) = SecretKey::generate(&t.data, 4, &L2, PivotSelection::Random, 1234);
    let fresh = Arc::new(
        CloudServer::new(
            MIndexConfig {
                num_pivots: 4,
                max_level: 2,
                bucket_capacity: 16,
                strategy: RoutingStrategy::Distances,
            },
            MemoryStore::new(),
        )
        .unwrap(),
    );
    let mut new_owner =
        client_for(new_key, L2, Arc::clone(&fresh), ClientConfig::distances()).with_rng_seed(5);
    owner.rekey_into(&mut new_owner, 16).unwrap();
    let (back, _) = new_owner.export_all().unwrap();
    assert_eq!(back.len(), t.data.len());
}
