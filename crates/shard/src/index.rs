//! The sharded M-Index: N fully independent shards, scatter-gather reads.
//!
//! Each shard is a complete [`MIndex`] with its **own** bucket store and its
//! own reader–writer lock, so an insert takes the write lock of exactly one
//! shard — 1/N of the key space blocks while searches and inserts on every
//! other shard proceed. Searches fan out to all shards (scoped threads over
//! `&self`, the shared-read path): each shard **opens** a lazy
//! [`CandidateCursor`] under its read guard, the guards drop with the
//! fan-out, and the coordinator then drains the merged bound-ordered
//! frontier lock-free until the global budget is met (see
//! [`crate::merge::drain_frontier`]) — shards never materialize candidates
//! the merge would discard.
//!
//! A shard-aware ownership map (`id → shard`) backs the two operations that
//! address entries by external id: duplicate-id rejection at insert and the
//! two-phase fetch (`fetch_entries`), which routes each requested id to its
//! owning shard instead of asking everyone.

use std::collections::HashMap;

use parking_lot::{RwLock, RwLockReadGuard};
use simcloud_mindex::{
    CandidateCursor, IndexEntry, MIndex, MIndexConfig, MIndexError, PromiseEvaluator, SearchStats,
    FIRST_CELL_ONLY,
};
use simcloud_storage::{BucketStore, IoStats};
use simcloud_telemetry::Registry;

use crate::merge::{drain_frontier, drain_frontier_timed};
use crate::router::ShardRouter;
use crate::telemetry::ShardTiming;

/// Aggregate shape of a sharded deployment (the `Info` view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedShape {
    /// Total entries across shards.
    pub entries: u64,
    /// Total leaf cells across shards.
    pub leaves: usize,
    /// Deepest shard tree.
    pub max_depth: usize,
}

/// One shard's search answer: ranked `(entry, lower_bound)` candidates
/// plus that search's statistics — the unit the gather step merges.
type RankedCandidates = (Vec<(IndexEntry, f64)>, SearchStats);

/// An opened (but not yet drained) scatter: one cursor per shard plus
/// the query's global drain cap (`None` = drain everything).
pub type OpenedFrontier = (Vec<CandidateCursor>, Option<usize>);

/// N independent M-Index shards behind one scatter-gather facade.
pub struct ShardedMIndex<S: BucketStore> {
    /// The (shard-invariant) index configuration — kept here so the insert
    /// path validates entries lock-free instead of taking a shard lock.
    config: MIndexConfig,
    shards: Vec<RwLock<MIndex<S>>>,
    /// External id → owning shard. Guarded by its own lock so inserts to
    /// *different* shards contend only for this map's brief update, never
    /// for each other's index write locks.
    owners: RwLock<HashMap<u64, usize>>,
    router: Box<dyn ShardRouter>,
    /// Whether searches fan out on scoped threads (one per shard) or walk
    /// the shards sequentially on the calling thread. Defaults to the
    /// machine: with a single core the spawns are pure overhead (~tens of
    /// µs per query) and sequential scatter-gather computes the identical
    /// answer.
    parallel_fanout: bool,
    /// Optional shard-layer timing (see [`ShardTiming`]); bound by the
    /// server front end so opens, pulls and merges land in its registry.
    telemetry: Option<ShardTiming>,
}

impl<S: BucketStore> std::fmt::Debug for ShardedMIndex<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMIndex")
            .field("shards", &self.shards.len())
            .field("router", &self.router.name())
            .field("entries", &self.len())
            .finish()
    }
}

impl<S: BucketStore> ShardedMIndex<S> {
    /// Creates one shard per store, all with the same index configuration.
    /// At least one store is required; a single store degenerates to a
    /// plain `MIndex` with map-based fetch routing.
    pub fn new(
        config: MIndexConfig,
        router: Box<dyn ShardRouter>,
        stores: Vec<S>,
    ) -> Result<Self, MIndexError> {
        if stores.is_empty() {
            return Err(MIndexError::BadConfig(
                "a sharded index needs at least one store".into(),
            ));
        }
        let shards = stores
            .into_iter()
            .map(|s| Ok(RwLock::new(MIndex::new(config, s)?)))
            .collect::<Result<Vec<_>, MIndexError>>()?;
        Ok(Self {
            config,
            shards,
            owners: RwLock::new(HashMap::new()),
            router,
            parallel_fanout: std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
                > 1,
            telemetry: None,
        })
    }

    /// Binds shard-layer timing (`shard.open` / `shard.pull` /
    /// `shard.merge` histograms) into `registry`. Timing follows the
    /// registry's enabled switch; an unbound index reads no clocks.
    pub fn bind_telemetry(&mut self, registry: &Registry) {
        self.telemetry = Some(ShardTiming::bind(registry));
    }

    /// Overrides the fan-out mode (default: parallel iff the machine has
    /// more than one core). Answers are identical either way; this is a
    /// latency/overhead dial.
    pub fn with_parallel_fanout(mut self, parallel: bool) -> Self {
        self.parallel_fanout = parallel;
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The router's name ("hash", "pivot", …).
    pub fn router_name(&self) -> &'static str {
        self.router.name()
    }

    /// Total indexed entries (exactly the ownership map's size).
    pub fn len(&self) -> u64 {
        self.owners.read().len() as u64
    }

    /// True when no shard holds anything.
    pub fn is_empty(&self) -> bool {
        self.owners.read().is_empty()
    }

    /// Read access to one shard (shape and storage inspection), `None` for
    /// an out-of-range index. Holds that shard's shared lock for the
    /// guard's lifetime — keep it short.
    pub fn shard(&self, i: usize) -> Option<RwLockReadGuard<'_, MIndex<S>>> {
        self.shards.get(i).map(|s| s.read())
    }

    /// The shard the router assigns `entry` to (what *would* own it).
    pub fn route(&self, entry: &IndexEntry) -> usize {
        self.router.route(entry, self.shards.len())
    }

    /// Aggregate tree shape: entries and leaves sum, depth is the deepest
    /// shard (each shard's tree splits independently on its own load).
    pub fn shape(&self) -> ShardedShape {
        let mut out = ShardedShape {
            entries: self.len(),
            leaves: 0,
            max_depth: 0,
        };
        for s in &self.shards {
            let shape = s.read().shape();
            out.leaves += shape.leaves;
            out.max_depth = out.max_depth.max(shape.max_depth);
        }
        out
    }

    /// Flushes every shard's store to durable storage, shard by shard
    /// (each under its own write lock). Shards commit independently: a
    /// failure on shard `k` leaves shards `< k` committed and is returned
    /// immediately.
    pub fn flush(&self) -> Result<(), MIndexError> {
        for s in &self.shards {
            s.write().flush()?;
        }
        Ok(())
    }

    /// Summed I/O statistics over all shard stores (each shard owns an
    /// independent store, so the deployment's cost is the sum — see
    /// `IoStats::merge_from`).
    pub fn io_stats(&self) -> IoStats {
        let mut total = IoStats::default();
        for s in &self.shards {
            total.merge_from(&s.read().store().stats());
        }
        total
    }

    /// Inserts one entry into the shard the router assigns it to. Only that
    /// shard's write lock is taken, so inserts to distinct shards proceed
    /// in parallel; the global ownership map is updated under its own brief
    /// lock. Error precedence matches a single `MIndex`: shape validation
    /// first, then the (now global) duplicate-id check.
    pub fn insert(&self, entry: IndexEntry) -> Result<(), MIndexError> {
        let shard = self.router.route(&entry, self.shards.len());
        // Lock-free shape validation (the config is shard-invariant): a
        // malformed entry is rejected before any lock is touched, and a
        // well-formed one pays exactly one shard-lock acquisition.
        self.config.validate_entry(&entry)?;
        let id = entry.id;
        {
            let mut owners = self.owners.write();
            if owners.contains_key(&id) {
                return Err(MIndexError::DuplicateId(id));
            }
            // Reserve before the shard insert so a concurrent insert of the
            // same id fails fast instead of racing two shards.
            owners.insert(id, shard);
        }
        let Some(slot) = self.shards.get(shard) else {
            self.owners.write().remove(&id);
            return Err(MIndexError::Corrupt(format!(
                "router chose shard {shard} of {}",
                self.shards.len()
            )));
        };
        // Bind the result so the shard write guard (a scrutinee temporary
        // would outlive the match) is released before the ownership map is
        // touched again — the documented order is map before shard.
        let result = slot.write().insert(entry);
        match result {
            Ok(()) => Ok(()),
            Err(e) => {
                self.owners.write().remove(&id);
                Err(e)
            }
        }
    }

    /// Runs `f` against every shard — concurrently on scoped threads over
    /// the shared-read path (shard 0 on the calling thread) when parallel
    /// fan-out is on, sequentially otherwise. Results come back in shard
    /// order either way.
    fn fan_out<R, F>(&self, f: F) -> Vec<Result<R, MIndexError>>
    where
        R: Send,
        F: Fn(&MIndex<S>) -> Result<R, MIndexError> + Sync,
    {
        if self.shards.len() == 1 || !self.parallel_fanout {
            return self.shards.iter().map(|s| f(&s.read())).collect();
        }
        std::thread::scope(|scope| {
            let mut shards = self.shards.iter();
            let first = shards.next();
            let handles: Vec<_> = shards
                .map(|s| {
                    let f = &f;
                    scope.spawn(move || f(&s.read()))
                })
                .collect();
            let mut out = Vec::with_capacity(self.shards.len());
            if let Some(s) = first {
                out.push(f(&s.read()));
            }
            out.extend(handles.into_iter().map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(MIndexError::Corrupt("shard worker panicked".into())))
            }));
            out
        })
    }

    /// Collects a cursor fan-out, failing on the first failing shard (in
    /// shard order, deterministic). On success every shard guard has been
    /// released — the cursors are owned values — so the drain that follows
    /// runs lock-free.
    fn open_cursors(
        results: Vec<Result<CandidateCursor, MIndexError>>,
    ) -> Result<Vec<CandidateCursor>, MIndexError> {
        results.into_iter().collect()
    }

    /// Per-shard promise-walk budget for a k-NN cursor open.
    ///
    /// When the global candidate budget covers the whole collection, every
    /// shard must walk to exhaustion — that is the regime where sharded
    /// and single-index candidate sets provably coincide, and the
    /// byte-identity the equivalence suite pins. Below it the frontier
    /// contract applies instead: the coordinator stops after draining
    /// `cand_size` entries globally, so each shard stages only its
    /// `ceil(cand_size / N)` share of the budget in promise order. This is
    /// where the `~N·cand_size` gather-everything amplification actually
    /// fell: staging (walk + routing parse + bound computation), not just
    /// the decode the lazy yield already avoids.
    fn shard_open_budget(&self, cand_size: usize) -> usize {
        if cand_size == FIRST_CELL_ONLY {
            return cand_size;
        }
        let total = self.owners.read().len();
        if cand_size >= total {
            cand_size
        } else {
            cand_size.div_ceil(self.shards.len().max(1))
        }
    }

    /// Scatter-gather approximate k-NN candidates: every shard *opens* a
    /// cursor over its own cells in promise order (staging its
    /// [`Self::shard_open_budget`] share of the global budget without
    /// decoding payloads), and the coordinator drains the merged frontier
    /// until it holds the `cand_size` globally smallest wire lower bounds
    /// — entries past the global stopping point are never materialized.
    /// `FIRST_CELL_ONLY` returns the union of every shard's most promising
    /// cell, untrimmed (each shard's "first cell" is a fragment of the
    /// global one under pivot routing, and an independent sample under
    /// hash routing).
    pub fn knn_candidates(
        &self,
        evaluator: &PromiseEvaluator,
        cand_size: usize,
    ) -> Result<(Vec<(IndexEntry, f64)>, SearchStats), MIndexError> {
        let (cursors, cap) = self.open_knn_cursors(evaluator, cand_size)?;
        self.drain(cursors, cap)
    }

    /// The scatter half of [`Self::knn_candidates`]: fans the open out to
    /// every shard and returns the owned cursors plus the global drain
    /// cap. Separated so a traced front end can time the open and the
    /// drain as distinct request phases.
    pub fn open_knn_cursors(
        &self,
        evaluator: &PromiseEvaluator,
        cand_size: usize,
    ) -> Result<OpenedFrontier, MIndexError> {
        let cap = if cand_size == FIRST_CELL_ONLY {
            None
        } else {
            Some(cand_size)
        };
        let budget = self.shard_open_budget(cand_size);
        let cursors = Self::open_cursors(self.fan_out(|ix| {
            let _open = self.telemetry.as_ref().map(ShardTiming::open_timer);
            ix.knn_cursor(evaluator, budget)
        }))?;
        Ok((cursors, cap))
    }

    /// The gather half of every search: drains the merged frontier
    /// lock-free (see [`drain_frontier`]), timing the coordinator's merge
    /// and its pull runs when telemetry is bound.
    pub fn drain(
        &self,
        cursors: Vec<CandidateCursor>,
        cap: Option<usize>,
    ) -> Result<(Vec<(IndexEntry, f64)>, SearchStats), MIndexError> {
        match &self.telemetry {
            Some(t) => {
                let _merge = t.merge_timer();
                drain_frontier_timed(cursors, cap, t.pull_hist())
            }
            None => drain_frontier(cursors, cap),
        }
    }

    /// Scatter-gather precise range candidates: the union of the per-shard
    /// candidate supersets, drained uncapped — every true result lives in
    /// exactly one shard and survives that shard's (triangle-inequality-
    /// safe) pruning, so the merged list is a superset of the true results
    /// and client refinement returns exactly what a single index would.
    pub fn range_candidates(
        &self,
        query_distances: &[f64],
        radius: f64,
    ) -> Result<(Vec<(IndexEntry, f64)>, SearchStats), MIndexError> {
        let cursors = self.open_range_cursors(query_distances, radius)?;
        self.drain(cursors, None)
    }

    /// The scatter half of [`Self::range_candidates`] (see
    /// [`Self::open_knn_cursors`] for why the halves are public).
    pub fn open_range_cursors(
        &self,
        query_distances: &[f64],
        radius: f64,
    ) -> Result<Vec<CandidateCursor>, MIndexError> {
        Self::open_cursors(self.fan_out(|ix| {
            let _open = self.telemetry.as_ref().map(ShardTiming::open_timer);
            ix.range_cursor(query_distances, radius)
        }))
    }

    /// Scatter-gather for a whole k-NN batch in **one** fan-out pass: each
    /// shard worker opens every query's cursor under a single guard
    /// acquisition (instead of `batch × shards` lock crossings), then the
    /// coordinator drains each query's frontier independently. One result
    /// slot per query, in request order; a failing query (first failing
    /// shard, deterministic) occupies only its own slot.
    pub fn batch_knn_candidates(
        &self,
        queries: &[(PromiseEvaluator, usize)],
    ) -> Vec<Result<RankedCandidates, MIndexError>> {
        self.open_batch_knn(queries)
            .into_iter()
            .map(|opened| opened.and_then(|(cursors, cap)| self.drain(cursors, cap)))
            .collect()
    }

    /// The scatter half of [`Self::batch_knn_candidates`]: every query's
    /// per-shard cursors opened in **one** fan-out pass, one slot per
    /// query in request order (a failing query occupies only its own
    /// slot). Each slot carries the owned cursors plus that query's
    /// global drain cap, ready for [`Self::drain`].
    pub fn open_batch_knn(
        &self,
        queries: &[(PromiseEvaluator, usize)],
    ) -> Vec<Result<OpenedFrontier, MIndexError>> {
        // Per shard: one cursor per query. The closure itself cannot fail —
        // per-query errors stay in their slots — so a fan-out-level error
        // only arises from a worker panic and poisons the whole batch.
        let budgets: Vec<usize> = queries
            .iter()
            .map(|&(_, cand_size)| self.shard_open_budget(cand_size))
            .collect();
        let per_shard = self.fan_out(|ix| {
            let _open = self.telemetry.as_ref().map(ShardTiming::open_timer);
            Ok(queries
                .iter()
                .zip(&budgets)
                .map(|((evaluator, _), &budget)| ix.knn_cursor(evaluator, budget))
                .collect::<Vec<Result<CandidateCursor, MIndexError>>>())
        });
        let mut shard_iters = Vec::with_capacity(per_shard.len());
        for r in per_shard {
            match r {
                Ok(cursors) => shard_iters.push(cursors.into_iter()),
                Err(e) => {
                    let msg = e.to_string();
                    return queries
                        .iter()
                        .map(|_| Err(MIndexError::Corrupt(msg.clone())))
                        .collect();
                }
            }
        }
        queries
            .iter()
            .map(|&(_, cand_size)| {
                let mut cursors = Vec::with_capacity(shard_iters.len());
                let mut failed = None;
                for it in &mut shard_iters {
                    // Consume this query's slot from every shard even after
                    // a failure, so later queries stay aligned.
                    match it.next() {
                        Some(Ok(c)) => cursors.push(c),
                        Some(Err(e)) => failed = failed.or(Some(e)),
                        None => {
                            failed = failed.or_else(|| {
                                Some(MIndexError::Corrupt("shard answered a short batch".into()))
                            });
                        }
                    }
                }
                if let Some(e) = failed {
                    return Err(e);
                }
                let cap = if cand_size == FIRST_CELL_ONLY {
                    None
                } else {
                    Some(cand_size)
                };
                Ok((cursors, cap))
            })
            .collect()
    }

    /// Phase 2 of the two-phase fetch, shard-routed: each requested id is
    /// resolved to its owning shard through the ownership map and fetched
    /// there; ids no shard owns come back as `None`. One slot per requested
    /// id, in request order, duplicates included — the contract the
    /// client's fetch-mismatch detection relies on.
    pub fn fetch_entries(&self, ids: &[u64]) -> Result<Vec<Option<IndexEntry>>, MIndexError> {
        let mut out: Vec<Option<IndexEntry>> = Vec::with_capacity(ids.len());
        out.resize_with(ids.len(), || None);
        // Group by owning shard into a flat per-shard vec — shard indices
        // are small and dense, so indexing beats hashing on the phase-2
        // hot path.
        let mut per_shard: Vec<Vec<(usize, u64)>> = vec![Vec::new(); self.shards.len()];
        {
            let owners = self.owners.read();
            for (pos, id) in ids.iter().enumerate() {
                if let Some(&s) = owners.get(id) {
                    match per_shard.get_mut(s) {
                        Some(bucket) => bucket.push((pos, *id)),
                        None => {
                            return Err(MIndexError::Corrupt(format!(
                                "ownership map names shard {s} of {}",
                                self.shards.len()
                            )))
                        }
                    }
                }
            }
        }
        for (shard, items) in per_shard.iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            let Some(slot) = self.shards.get(shard) else {
                return Err(MIndexError::Corrupt(format!(
                    "ownership map names shard {shard} of {}",
                    self.shards.len()
                )));
            };
            let sub: Vec<u64> = items.iter().map(|&(_, id)| id).collect();
            let got = slot.read().fetch_entries(&sub)?;
            for (&(p, _), e) in items.iter().zip(got) {
                if let Some(dest) = out.get_mut(p) {
                    *dest = e;
                }
            }
        }
        Ok(out)
    }

    /// Reads all entries, shard by shard (diagnostics / export). Order is
    /// per-shard storage order; callers that need a global order sort.
    pub fn all_entries(&self) -> Result<Vec<IndexEntry>, MIndexError> {
        let mut out = Vec::with_capacity(self.len() as usize);
        for s in &self.shards {
            out.extend(s.read().all_entries()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{HashRouter, PivotRouter};
    use simcloud_mindex::{Routing, RoutingStrategy};
    use simcloud_storage::MemoryStore;

    fn cfg(pivots: usize) -> MIndexConfig {
        MIndexConfig {
            num_pivots: pivots,
            max_level: 2,
            bucket_capacity: 4,
            strategy: RoutingStrategy::Distances,
        }
    }

    fn sharded(shards: usize, router: Box<dyn ShardRouter>) -> ShardedMIndex<MemoryStore> {
        ShardedMIndex::new(
            cfg(3),
            router,
            (0..shards).map(|_| MemoryStore::new()).collect(),
        )
        .unwrap()
    }

    fn entry(id: u64, ds: &[f64]) -> IndexEntry {
        IndexEntry::new(id, Routing::from_distances(ds), vec![id as u8; 3])
    }

    #[test]
    fn no_stores_rejected() {
        assert!(matches!(
            ShardedMIndex::<MemoryStore>::new(cfg(3), Box::new(HashRouter), vec![]),
            Err(MIndexError::BadConfig(_))
        ));
    }

    #[test]
    fn inserts_land_on_router_chosen_shards() {
        let idx = sharded(3, Box::new(PivotRouter));
        idx.insert(entry(1, &[0.1, 0.5, 0.9])).unwrap(); // pivot 0
        idx.insert(entry(2, &[0.9, 0.1, 0.5])).unwrap(); // pivot 1
        idx.insert(entry(3, &[0.9, 0.5, 0.1])).unwrap(); // pivot 2
        assert_eq!(idx.len(), 3);
        for i in 0..3 {
            assert_eq!(idx.shard(i).map_or(0, |s| s.len()), 1, "shard {i}");
        }
    }

    #[test]
    fn duplicate_id_rejected_across_shards() {
        // Pivot routing: the same id with different routing would land on a
        // *different* shard — only a global check catches the duplicate.
        let idx = sharded(3, Box::new(PivotRouter));
        idx.insert(entry(7, &[0.1, 0.5, 0.9])).unwrap(); // shard 0
        assert!(matches!(
            idx.insert(entry(7, &[0.9, 0.1, 0.5])), // would be shard 1
            Err(MIndexError::DuplicateId(7))
        ));
        assert_eq!(idx.len(), 1);
        assert_eq!(
            idx.shard(1).map_or(u64::MAX, |s| s.len()),
            0,
            "rejected entry must not land"
        );
    }

    #[test]
    fn shape_error_beats_duplicate_and_reservation_rolls_back() {
        let idx = sharded(2, Box::new(HashRouter));
        idx.insert(entry(1, &[0.1, 0.5, 0.9])).unwrap();
        // Same id *and* wrong dimension: single-index precedence reports
        // the shape problem.
        assert!(matches!(
            idx.insert(entry(1, &[0.1, 0.5])),
            Err(MIndexError::DimensionMismatch { .. })
        ));
        // Wrong dimension on a fresh id: the ownership reservation must be
        // rolled back so a corrected retry succeeds.
        assert!(matches!(
            idx.insert(entry(2, &[0.1])),
            Err(MIndexError::DimensionMismatch { .. })
        ));
        idx.insert(entry(2, &[0.2, 0.6, 0.8])).unwrap();
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn knn_merges_across_shards_sorted_and_capped() {
        let idx = sharded(2, Box::new(HashRouter));
        for x in 0..=10u64 {
            idx.insert(entry(x, &[x as f64, 10.0 - x as f64, 5.0]))
                .unwrap();
        }
        let ev = PromiseEvaluator::from_distances(vec![3.0, 7.0, 5.0]);
        let (cands, stats) = idx.knn_candidates(&ev, 5).unwrap();
        assert_eq!(cands.len(), 5);
        assert_eq!(stats.candidates, 5);
        assert!(
            cands.windows(2).all(|w| w[0].1 <= w[1].1),
            "merged list must stay sorted by bound"
        );
        // In this 1-D-style world the bound is exact: the query point wins.
        assert_eq!(cands[0].0.id, 3);
    }

    #[test]
    fn range_returns_union_of_shard_supersets() {
        let idx = sharded(3, Box::new(HashRouter));
        for x in 0..=10u64 {
            idx.insert(entry(x, &[x as f64, 10.0 - x as f64, 5.0]))
                .unwrap();
        }
        let (cands, stats) = idx.range_candidates(&[2.0, 8.0, 5.0], 1.5).unwrap();
        let mut ids: Vec<u64> = cands.iter().map(|(e, _)| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3], "exact in the 1-D world");
        assert!(stats.entries_scanned >= 3);
        assert!(cands.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn search_stats_sum_over_shards() {
        // Capacity high enough that inserts never split (splits re-read
        // buckets and would blur the read accounting below).
        let idx = ShardedMIndex::new(
            MIndexConfig {
                bucket_capacity: 100,
                ..cfg(3)
            },
            Box::new(HashRouter),
            (0..4).map(|_| MemoryStore::new()).collect(),
        )
        .unwrap();
        for x in 0..20u64 {
            idx.insert(entry(x, &[x as f64, 20.0 - x as f64, 10.0]))
                .unwrap();
        }
        let (_, stats) = idx.range_candidates(&[10.0, 10.0, 10.0], 30.0).unwrap();
        assert_eq!(
            stats.entries_scanned, 20,
            "an all-covering radius must scan every shard's entries, \
             i.e. the per-shard counts sum"
        );
        let io = idx.io_stats();
        assert_eq!(io.records_read, 20, "per-shard store reads sum too");
    }

    #[test]
    fn fetch_entries_routes_to_owning_shards() {
        let idx = sharded(3, Box::new(HashRouter));
        for x in 0..12u64 {
            idx.insert(entry(x, &[x as f64, 12.0 - x as f64, 6.0]))
                .unwrap();
        }
        let got = idx.fetch_entries(&[7, 0, 99, 3, 7]).unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(got[0].as_ref().unwrap().id, 7);
        assert_eq!(got[0].as_ref().unwrap().payload, vec![7u8; 3]);
        assert_eq!(got[1].as_ref().unwrap().id, 0);
        assert!(got[2].is_none(), "unknown id yields None");
        assert_eq!(got[3].as_ref().unwrap().id, 3);
        assert_eq!(got[4].as_ref().unwrap().id, 7, "duplicates each answered");
        assert!(idx.fetch_entries(&[]).unwrap().is_empty());
    }

    #[test]
    fn first_cell_only_unions_shard_first_cells() {
        let idx = sharded(2, Box::new(HashRouter));
        for i in 0..6u64 {
            idx.insert(entry(i, &[0.1, 0.5, 0.9])).unwrap(); // all pivot 0
        }
        let ev = PromiseEvaluator::from_distances(vec![0.1, 0.5, 0.9]);
        let (cands, _) = idx.knn_candidates(&ev, FIRST_CELL_ONLY).unwrap();
        assert_eq!(
            cands.len(),
            6,
            "the global first cell is split across shards; the union \
             restores it untrimmed"
        );
    }

    /// Parallel and sequential fan-out must compute identical answers —
    /// forced explicitly so both paths run regardless of the host's core
    /// count.
    #[test]
    fn parallel_and_sequential_fanout_agree() {
        let build = |parallel: bool| {
            let idx = sharded(3, Box::new(HashRouter)).with_parallel_fanout(parallel);
            for x in 0..=15u64 {
                idx.insert(entry(x, &[x as f64, 15.0 - x as f64, 7.5]))
                    .unwrap();
            }
            idx
        };
        let par = build(true);
        let seq = build(false);
        let ev = PromiseEvaluator::from_distances(vec![4.0, 11.0, 7.5]);
        let (a, sa) = par.knn_candidates(&ev, 6).unwrap();
        let (b, sb) = seq.knn_candidates(&ev, 6).unwrap();
        assert_eq!(
            a.iter().map(|(e, _)| e.id).collect::<Vec<_>>(),
            b.iter().map(|(e, _)| e.id).collect::<Vec<_>>()
        );
        assert_eq!(sa, sb);
        let (ra, _) = par.range_candidates(&[4.0, 11.0, 7.5], 2.0).unwrap();
        let (rb, _) = seq.range_candidates(&[4.0, 11.0, 7.5], 2.0).unwrap();
        assert_eq!(ra.len(), rb.len());
    }

    #[test]
    fn shape_and_export_aggregate() {
        let idx = sharded(2, Box::new(HashRouter));
        for x in 0..8u64 {
            idx.insert(entry(x, &[x as f64, 8.0 - x as f64, 4.0]))
                .unwrap();
        }
        let shape = idx.shape();
        assert_eq!(shape.entries, 8);
        assert!(shape.leaves >= 2);
        let mut all = idx.all_entries().unwrap();
        all.sort_by_key(|e| e.id);
        assert_eq!(all.len(), 8);
        assert_eq!(all[5].payload, vec![5u8; 3]);
    }

    #[test]
    fn concurrent_inserts_to_distinct_shards_and_searches() {
        let idx = std::sync::Arc::new(sharded(4, Box::new(HashRouter)));
        for x in 0..8u64 {
            idx.insert(entry(x, &[x as f64, 8.0 - x as f64, 4.0]))
                .unwrap();
        }
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let idx = std::sync::Arc::clone(&idx);
                scope.spawn(move || {
                    for i in 0..25u64 {
                        let id = 100 + t * 100 + i;
                        idx.insert(entry(id, &[(id % 9) as f64, 4.0, 2.0])).unwrap();
                    }
                });
            }
            let idx = std::sync::Arc::clone(&idx);
            scope.spawn(move || {
                let ev = PromiseEvaluator::from_distances(vec![3.0, 5.0, 4.0]);
                for _ in 0..50 {
                    let (cands, _) = idx.knn_candidates(&ev, 8).unwrap();
                    assert!(!cands.is_empty());
                }
            });
        });
        assert_eq!(idx.len(), 8 + 4 * 25);
        let total: u64 = (0..4).map(|i| idx.shard(i).map_or(0, |s| s.len())).sum();
        assert_eq!(total, idx.len(), "ownership map and shards agree");
    }
}
