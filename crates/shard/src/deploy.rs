//! Deployment helpers for the sharded cloud — mirrors `simcloud_core::cloud`
//! so switching a deployment from one index to N shards is a one-line
//! change on the construction site and a no-op everywhere else (the wire
//! protocol and the client are unchanged).

use std::sync::Arc;

use simcloud_core::{ClientConfig, EncryptedClient, SecretKey};
use simcloud_metric::{Metric, Vector};
use simcloud_mindex::{MIndexConfig, MIndexError};
use simcloud_storage::{BucketStore, MemoryStore};
use simcloud_transport::{
    serve_tcp_shared, serve_tcp_shared_with, InProcessTransport, NetworkModel, ServeOptions,
    Shared, TcpTransport,
};

use crate::router::ShardRouter;
use crate::server::ShardedCloudServer;

/// In-process sharded similarity cloud: client + embedded sharded server
/// over a modelled network.
pub type ShardedInProcessCloud<M, S> =
    EncryptedClient<M, InProcessTransport<ShardedCloudServer<S>>>;

/// Builds an in-process sharded deployment with the default loopback model
/// and default [`ServerConfig`].
pub fn sharded_in_process<M, S>(
    key: SecretKey,
    metric: M,
    index_config: MIndexConfig,
    router: Box<dyn ShardRouter>,
    stores: Vec<S>,
    client_config: ClientConfig,
) -> Result<ShardedInProcessCloud<M, S>, MIndexError>
where
    M: Metric<Vector>,
    S: BucketStore,
{
    let server = ShardedCloudServer::new(index_config, router, stores)?;
    Ok(EncryptedClient::new(
        key,
        metric,
        InProcessTransport::with_model(server, NetworkModel::loopback()),
        client_config,
    ))
}

/// A client sharing an `Arc`'d in-process sharded server with other clients
/// (one such client per query thread, as with `client_for`).
pub type SharedShardedCloud<M, S> =
    EncryptedClient<M, InProcessTransport<Shared<Arc<ShardedCloudServer<S>>>>>;

/// Wires an in-process client to an existing shared sharded server with the
/// default loopback model.
pub fn client_for_sharded<M, S>(
    key: SecretKey,
    metric: M,
    server: Arc<ShardedCloudServer<S>>,
    client_config: ClientConfig,
) -> SharedShardedCloud<M, S>
where
    M: Metric<Vector>,
    S: BucketStore,
{
    client_for_sharded_with_model(key, metric, server, client_config, NetworkModel::loopback())
}

/// [`client_for_sharded`] with an explicit network model.
pub fn client_for_sharded_with_model<M, S>(
    key: SecretKey,
    metric: M,
    server: Arc<ShardedCloudServer<S>>,
    client_config: ClientConfig,
    model: NetworkModel,
) -> SharedShardedCloud<M, S>
where
    M: Metric<Vector>,
    S: BucketStore,
{
    EncryptedClient::new(
        key,
        metric,
        InProcessTransport::with_model(Shared(server), model),
        client_config,
    )
}

/// Concurrent TCP serving mode for a sharded server: accepts any number of
/// connections, each processed lock-free through the scatter-gather read
/// path. The caller keeps its `Arc` for inspection; attach clients with
/// `simcloud_core::connect_tcp` — the wire is identical.
pub fn serve_tcp_concurrent_sharded<S>(
    server: Arc<ShardedCloudServer<S>>,
) -> std::io::Result<simcloud_transport::tcp::TcpServerHandle>
where
    S: BucketStore + 'static,
{
    serve_tcp_shared(server)
}

/// [`serve_tcp_concurrent_sharded`] with explicit [`ServeOptions`]: the
/// sharded scatter-gather server gets the same per-connection deadlines,
/// connection limit with typed load shedding, and bounded shutdown drain as
/// the single-node one.
pub fn serve_tcp_concurrent_sharded_with<S>(
    server: Arc<ShardedCloudServer<S>>,
    options: ServeOptions,
) -> std::io::Result<simcloud_transport::tcp::TcpServerHandle>
where
    S: BucketStore + 'static,
{
    serve_tcp_shared_with(server, options)
}

/// TCP sharded deployment in one call: spawns the (concurrent) server,
/// connects one client. Returns client and server handle.
#[allow(clippy::type_complexity)]
pub fn over_tcp_sharded<M, S>(
    key: SecretKey,
    metric: M,
    index_config: MIndexConfig,
    router: Box<dyn ShardRouter>,
    stores: Vec<S>,
    client_config: ClientConfig,
) -> Result<
    (
        EncryptedClient<M, TcpTransport>,
        simcloud_transport::tcp::TcpServerHandle,
    ),
    Box<dyn std::error::Error>,
>
where
    M: Metric<Vector>,
    S: BucketStore + 'static,
{
    let server = Arc::new(ShardedCloudServer::new(index_config, router, stores)?);
    let handle = serve_tcp_concurrent_sharded(server)?;
    let transport = TcpTransport::connect(handle.addr())?;
    Ok((
        EncryptedClient::new(key, metric, transport, client_config),
        handle,
    ))
}

/// Convenience: `n` fresh in-memory stores (the common sharded test and
/// bench deployment).
pub fn memory_stores(n: usize) -> Vec<MemoryStore> {
    (0..n).map(|_| MemoryStore::new()).collect()
}
