//! # simcloud-shard — sharded M-Index, scatter-gather similarity cloud
//!
//! The single `CloudServer` keeps its whole M-Index behind one
//! reader–writer lock: searches share it, but **every insert takes the one
//! write lock**, and every search walks one index. This crate removes both
//! ceilings with a layer between the index and the server:
//!
//! * [`ShardedMIndex`] — N fully independent M-Index shards, each with its
//!   own `BucketStore` and its own write lock. An insert blocks 1/N of the
//!   key space; searches fan out to all shards (scoped threads over
//!   `&self`, reusing the shared-read path), each shard *opening* a lazy
//!   `CandidateCursor`, and the coordinator drains the merged frontier by
//!   wire lower bound until `cand_size` candidates are pulled globally
//!   ([`merge::drain_frontier`]) — per-shard generation work drops toward
//!   `cand_size / N` instead of every shard materializing a full list.
//! * [`ShardedCloudServer`] — speaks the **existing wire protocol
//!   unchanged**, so the unmodified `EncryptedClient` (including lazy
//!   refinement and phase-2 `FetchObjects`) works against it byte for
//!   byte. Phase-2 fetches are routed to the owning shard through a
//!   shard-aware id map.
//! * [`ShardRouter`] — pluggable placement: [`HashRouter`] (uniform by id)
//!   or [`PivotRouter`] (nearest global pivot — a coarse Voronoi partition
//!   of the metric space, cf. distributed metric indexes like DIMS).
//!
//! Deployment helpers mirror `simcloud_core::cloud`: in-process
//! ([`sharded_in_process`], [`client_for_sharded`]) and concurrent TCP
//! ([`serve_tcp_concurrent_sharded`], [`over_tcp_sharded`]).
//!
//! **Exactness.** Range queries return byte-identical answers to a single
//! index: each true result lives in exactly one shard and survives that
//! shard's triangle-inequality-safe pruning, so the merged candidate list
//! is a superset of the true results and client refinement does the rest.
//! Approximate k-NN merges each shard's locally best `cand_size`
//! candidates; when `cand_size` covers the collection the candidate sets
//! coincide with the single index's and answers are byte-identical (the
//! property test pins this), otherwise the sharded set draws from at least
//! as many promising cells.

#![warn(missing_docs)]

pub mod deploy;
pub mod index;
pub mod merge;
pub mod router;
pub mod server;
pub mod telemetry;

pub use deploy::{
    client_for_sharded, client_for_sharded_with_model, memory_stores, over_tcp_sharded,
    serve_tcp_concurrent_sharded, serve_tcp_concurrent_sharded_with, sharded_in_process,
    ShardedInProcessCloud, SharedShardedCloud,
};
pub use index::{ShardedMIndex, ShardedShape};
pub use router::{HashRouter, PivotRouter, ShardRouter};
pub use server::ShardedCloudServer;
pub use telemetry::ShardTiming;
