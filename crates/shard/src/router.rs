//! Shard routing: which shard owns which entry.
//!
//! Routing is pluggable so deployments can trade balance against locality:
//!
//! * [`HashRouter`] — uniform hash of the external id. Best load balance,
//!   no locality: a query's candidates are spread over all shards, so
//!   every search fans out usefully.
//! * [`PivotRouter`] — the entry's nearest *global* pivot, i.e. the first
//!   element of its pivot permutation, modulo the shard count. This is a
//!   coarse Voronoi partition of the metric space (DIMS-style): objects in
//!   one level-1 cell share a shard, so a query with a tight candidate set
//!   touches few shards, at the cost of pivot-popularity skew.
//!
//! Routers see only what the untrusted server already sees — ids and
//! routing information — so sharding adds no leakage.

use simcloud_mindex::IndexEntry;

/// Assigns entries to shards. Implementations must be **pure functions of
/// the entry**: a re-inserted entry with identical routing must land on
/// the same shard (the ownership map assumes it), and routing must not
/// depend on mutable state (it runs outside the shard locks).
pub trait ShardRouter: Send + Sync {
    /// Shard index in `0..shards` that must hold `entry`. `shards` is
    /// always ≥ 1.
    fn route(&self, entry: &IndexEntry, shards: usize) -> usize;

    /// Human-readable router name (appears in benches and reports).
    fn name(&self) -> &'static str;
}

/// Uniform id-hash routing (Fibonacci multiplicative hash — splits
/// sequential external ids, the common case, evenly).
#[derive(Debug, Clone, Copy, Default)]
pub struct HashRouter;

impl ShardRouter for HashRouter {
    fn route(&self, entry: &IndexEntry, shards: usize) -> usize {
        (entry.id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % shards
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

/// Nearest-global-pivot (Voronoi) routing: shard = first permutation
/// element mod shard count. Entries whose routing information is too short
/// to name a nearest pivot fall back to shard 0 — the shard's own index
/// then rejects them with its usual validation error.
#[derive(Debug, Clone, Copy, Default)]
pub struct PivotRouter;

impl ShardRouter for PivotRouter {
    fn route(&self, entry: &IndexEntry, shards: usize) -> usize {
        match entry.routing.permutation().closest() {
            Some(p) => p as usize % shards,
            None => 0,
        }
    }

    fn name(&self) -> &'static str {
        "pivot"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcloud_mindex::Routing;

    fn entry(id: u64, ds: &[f64]) -> IndexEntry {
        IndexEntry::new(id, Routing::from_distances(ds), vec![])
    }

    #[test]
    fn hash_router_spreads_sequential_ids() {
        let r = HashRouter;
        let mut counts = [0usize; 4];
        for id in 0..400u64 {
            counts[r.route(&entry(id, &[0.0]), 4)] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                (60..=140).contains(&c),
                "shard {shard} got {c} of 400 sequential ids: {counts:?}"
            );
        }
    }

    #[test]
    fn hash_router_is_deterministic() {
        let r = HashRouter;
        let e = entry(17, &[0.5]);
        assert_eq!(r.route(&e, 4), r.route(&e, 4));
        assert!(r.route(&e, 1) == 0);
    }

    #[test]
    fn pivot_router_follows_nearest_pivot() {
        let r = PivotRouter;
        // Nearest pivot = index of the smallest distance.
        assert_eq!(r.route(&entry(1, &[0.9, 0.1, 0.5]), 4), 1);
        assert_eq!(r.route(&entry(2, &[0.1, 0.9, 0.5]), 4), 0);
        assert_eq!(r.route(&entry(3, &[0.9, 0.5, 0.1]), 4), 2);
        // Modulo wraps pivot indexes beyond the shard count.
        assert_eq!(r.route(&entry(3, &[0.9, 0.5, 0.1]), 2), 0);
    }

    #[test]
    fn pivot_router_handles_permutation_routing_and_empty() {
        let r = PivotRouter;
        let p = IndexEntry::new(
            4,
            simcloud_mindex::Routing::permutation_prefix(&[0.4, 0.2, 0.9], 2),
            vec![],
        );
        assert_eq!(r.route(&p, 4), 1);
        let empty = IndexEntry::new(5, Routing::from_distances(&[]), vec![]);
        assert_eq!(r.route(&empty, 4), 0, "short routing falls back to 0");
    }
}
