//! Shard-layer timing: per-shard cursor opens, frontier pulls and the
//! coordinator's merge, bound into a [`Registry`] under the `shard`
//! component.
//!
//! The sharded front end binds one of these against its server registry
//! (`ShardedMIndex::bind_telemetry`), so a `MetricsSnapshot` answer from
//! the sharded server carries `shard.open` / `shard.pull` / `shard.merge`
//! histograms alongside the `server.*` request-path metrics. Timing
//! follows the registry's enabled switch: disabled telemetry reads no
//! clocks on the fan-out path.

use std::sync::Arc;

use simcloud_telemetry::{Histogram, Registry, SpanTimer};

/// Histograms for the scatter-gather lifecycle, bound to one registry.
///
/// * `shard.open` — one record per **shard** per search: that shard's
///   cursor-open time (tree walk + promise staging under its read guard).
/// * `shard.pull` — one record per **sampled** frontier *run* (every 8th;
///   the first run of a drain always records): an uninterrupted pull from
///   the cursor currently holding the global minimum bound. Runs are the
///   drain's hottest unit, so timing them all costs whole percents of
///   query throughput — sampling keeps the distribution without the tax.
/// * `shard.merge` — one record per search: the coordinator's whole
///   lock-free drain of the merged frontier.
#[derive(Debug, Clone)]
pub struct ShardTiming {
    registry: Registry,
    open: Arc<Histogram>,
    pull: Arc<Histogram>,
    merge: Arc<Histogram>,
}

impl ShardTiming {
    /// Registers the shard histograms on `registry` and binds to its
    /// enabled switch.
    pub fn bind(registry: &Registry) -> Self {
        ShardTiming {
            registry: registry.clone(),
            open: registry.histogram("shard", "open"),
            pull: registry.histogram("shard", "pull"),
            merge: registry.histogram("shard", "merge"),
        }
    }

    /// RAII timer for one shard's cursor open (free when disabled).
    pub(crate) fn open_timer(&self) -> SpanTimer<'_> {
        SpanTimer::new(&self.open, self.registry.enabled())
    }

    /// RAII timer for one coordinator drain (free when disabled).
    pub(crate) fn merge_timer(&self) -> SpanTimer<'_> {
        SpanTimer::new(&self.merge, self.registry.enabled())
    }

    /// The pull-run histogram, `None` when telemetry is disabled (the
    /// drain loop then skips its per-run clock reads entirely).
    pub(crate) fn pull_hist(&self) -> Option<&Histogram> {
        self.registry.enabled().then_some(&*self.pull)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_stops_timing() {
        let registry = Registry::new();
        let timing = ShardTiming::bind(&registry);
        {
            let _t = timing.open_timer();
            let _m = timing.merge_timer();
        }
        assert!(timing.pull_hist().is_some());
        registry.set_enabled(false);
        {
            let _t = timing.open_timer();
        }
        assert!(timing.pull_hist().is_none());
        let text = registry.render();
        assert!(text.contains("histogram shard.open count=1"), "{text}");
        assert!(text.contains("histogram shard.merge count=1"), "{text}");
        assert!(text.contains("histogram shard.pull count=0"), "{text}");
    }
}
