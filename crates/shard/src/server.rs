//! The sharded similarity-cloud server.
//!
//! [`ShardedCloudServer`] speaks **exactly** the wire protocol of
//! `simcloud_core::CloudServer` — same requests, same responses, same
//! candidate staging — so today's unmodified `EncryptedClient` works
//! against it byte for byte. The difference is entirely behind the wire:
//! the index is a [`ShardedMIndex`], so inserts take one shard's write
//! lock instead of a global one and searches scatter-gather across all
//! shards in parallel.

use simcloud_core::protocol::{Candidate, FetchedObject, Request, Response};
use simcloud_core::telemetry::{request_label, ServerTelemetry};
use simcloud_core::{check_cand_size, evaluator_for, stage_candidates, ServerConfig};
use simcloud_mindex::{IndexEntry, MIndexConfig, MIndexError, SearchStats};
use simcloud_storage::BucketStore;
use simcloud_telemetry::Trace;
use simcloud_transport::{RequestHandler, SharedRequestHandler};

use crate::index::ShardedMIndex;
use crate::router::ShardRouter;

/// Server half of the sharded Encrypted M-Index. Drop-in wire-compatible
/// with `CloudServer`; holds no key material. All self-reporting goes
/// through the **same** [`ServerTelemetry`] implementation as the single
/// server, so both deployments expose identically shaped metrics (the
/// shard layer adds its own `shard.*` histograms to the shared registry).
pub struct ShardedCloudServer<S: BucketStore> {
    index: ShardedMIndex<S>,
    config: ServerConfig,
    telemetry: ServerTelemetry,
}

impl<S: BucketStore> std::fmt::Debug for ShardedCloudServer<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCloudServer").finish_non_exhaustive()
    }
}

impl<S: BucketStore> ShardedCloudServer<S> {
    /// Creates a sharded server with one shard per store and the default
    /// [`ServerConfig`] (no inline budget).
    pub fn new(
        config: MIndexConfig,
        router: Box<dyn ShardRouter>,
        stores: Vec<S>,
    ) -> Result<Self, MIndexError> {
        Self::with_config(config, ServerConfig::default(), router, stores)
    }

    /// Creates a sharded server with an explicit [`ServerConfig`].
    pub fn with_config(
        config: MIndexConfig,
        server_config: ServerConfig,
        router: Box<dyn ShardRouter>,
        stores: Vec<S>,
    ) -> Result<Self, MIndexError> {
        let telemetry = ServerTelemetry::new();
        let mut index = ShardedMIndex::new(config, router, stores)?;
        // Shard-layer timings land in the same registry, so one
        // MetricsSnapshot answer carries the whole picture; the entries
        // gauge is seeded here so Health never touches shard locks.
        index.bind_telemetry(telemetry.registry());
        telemetry.set_entries(index.len());
        Ok(Self {
            index,
            config: server_config,
            telemetry,
        })
    }

    /// Overrides the index's fan-out mode (see
    /// `ShardedMIndex::with_parallel_fanout`).
    pub fn with_parallel_fanout(mut self, parallel: bool) -> Self {
        self.index = self.index.with_parallel_fanout(parallel);
        self
    }

    /// The server configuration.
    pub fn server_config(&self) -> ServerConfig {
        self.config
    }

    /// The sharded index (shard inspection, aggregate shape/IO stats).
    pub fn index(&self) -> &ShardedMIndex<S> {
        &self.index
    }

    /// Commits every shard's store to durable storage (see
    /// [`ShardedMIndex::flush`]).
    pub fn flush(&self) -> Result<(), MIndexError> {
        self.index.flush()
    }

    /// Statistics of the most recent search request — per-shard cost
    /// counters summed, `candidates` the merged (capped) answer size.
    /// Zeroed when the most recent search failed.
    pub fn last_search_stats(&self) -> SearchStats {
        self.telemetry.last_search_stats()
    }

    /// Accumulated statistics over all search requests.
    pub fn total_search_stats(&self) -> SearchStats {
        self.telemetry.total_search_stats()
    }

    /// The server's telemetry: registry (including the shard-layer
    /// histograms), phase histograms, slow-query log, the enabled switch
    /// and the `Health` / `MetricsSnapshot` answer path — the same type
    /// the single server exposes.
    pub fn telemetry(&self) -> &ServerTelemetry {
        &self.telemetry
    }

    fn candidates_response(
        &self,
        result: Result<(Vec<(IndexEntry, f64)>, SearchStats), MIndexError>,
        trace: &mut Trace,
    ) -> Response {
        match result {
            Ok((entries, stats)) => {
                self.telemetry.record_search(stats);
                let list = {
                    let _stage = trace.span("stage", self.telemetry.stage_hist());
                    stage_candidates(entries, self.config.max_inline_response_bytes)
                };
                Response::CandidateList(list)
            }
            Err(e) => {
                self.telemetry.record_failed_search();
                Response::Error(e.to_string())
            }
        }
    }

    /// Processes one decoded request. Needs only `&self`: searches fan out
    /// over the shards' read locks, an insert takes exactly one shard's
    /// write lock. Wraps [`Self::process_traced`] in its own request
    /// trace, so direct callers feed the same histograms as the byte
    /// handler.
    pub fn process(&self, request: Request) -> Response {
        let mut trace = self.telemetry.trace_labeled(request_label(&request));
        let response = self.process_traced(request, &mut trace);
        self.telemetry.note_response(&response);
        self.telemetry.finish(trace);
        response
    }

    /// [`Self::process`] with the caller's request trace: the same phase
    /// vocabulary as the single server (route → open → pull → stage, or
    /// insert), with the scatter-gather specifics — per-shard opens,
    /// frontier pull runs, the coordinator merge — landing in the
    /// registry's `shard.*` histograms underneath the `open`/`pull`
    /// phases.
    fn process_traced(&self, request: Request, trace: &mut Trace) -> Response {
        match request {
            Request::Insert(entries) => {
                // Same non-atomic bulk *error* semantics as the single
                // server (the stored prefix stays and is reported), but a
                // weaker isolation level: each entry takes only its target
                // shard's write lock, so a concurrent search may observe a
                // partially applied bulk — the single server applies the
                // whole bulk under one write lock and exposes none-or-all.
                // This is the deliberate price of removing the global
                // write lock; deployments needing bulk atomicity against
                // readers must quiesce searches around the bulk.
                let n_entries;
                let response = {
                    let _insert = trace.span("insert", self.telemetry.insert_hist());
                    let mut n = 0u32;
                    let mut failure = None;
                    for e in entries {
                        match self.index.insert(e) {
                            Ok(()) => n += 1,
                            Err(e) => {
                                failure = Some(e.to_string());
                                break;
                            }
                        }
                    }
                    n_entries = u64::from(n);
                    match failure {
                        Some(message) => Response::InsertError {
                            inserted: n,
                            message,
                        },
                        None => Response::Inserted(n),
                    }
                };
                // The ops surface answers `entries` from this gauge, so
                // Health never waits on any shard's write lock.
                self.telemetry.add_entries(n_entries);
                response
            }
            Request::Range { distances, radius } => {
                let cursors = {
                    let _open = trace.span("open", self.telemetry.open_hist());
                    self.index.open_range_cursors(&distances, radius)
                };
                let result = match cursors {
                    Ok(cursors) => {
                        // Shard guards released with the fan-out: the
                        // drain runs lock-free over owned cursors.
                        let _pull = trace.span("pull", self.telemetry.pull_hist());
                        self.index.drain(cursors, None)
                    }
                    Err(e) => Err(e),
                };
                self.candidates_response(result, trace)
            }
            Request::ApproxKnn { routing, cand_size } => match check_cand_size(cand_size) {
                // Refused before any fan-out: the answer could never be
                // decoded by the requester. Per-request stats are zeroed
                // like any failed search.
                Err(msg) => {
                    self.telemetry.record_failed_search();
                    Response::Error(msg)
                }
                Ok(()) => {
                    let evaluator = {
                        let _route = trace.span("route", self.telemetry.route_hist());
                        evaluator_for(routing)
                    };
                    let opened = {
                        let _open = trace.span("open", self.telemetry.open_hist());
                        self.index.open_knn_cursors(&evaluator, cand_size as usize)
                    };
                    let result = match opened {
                        Ok((cursors, cap)) => {
                            let _pull = trace.span("pull", self.telemetry.pull_hist());
                            self.index.drain(cursors, cap)
                        }
                        Err(e) => Err(e),
                    };
                    self.candidates_response(result, trace)
                }
            },
            Request::BatchKnn(queries) => {
                // Partition first: oversized queries are refused up front
                // and never reach the index; every admissible query runs
                // in **one** batch fan-out — each shard is locked once and
                // opens all of the batch's cursors under that single guard
                // (`ShardedMIndex::open_batch_knn`), then the coordinator
                // drains each query's frontier lock-free.
                let mut slots: Vec<Option<String>> = Vec::with_capacity(queries.len());
                let mut plans = Vec::new();
                for q in queries {
                    match check_cand_size(q.cand_size) {
                        Ok(()) => {
                            slots.push(None);
                            plans.push((evaluator_for(q.routing), q.cand_size as usize));
                        }
                        Err(msg) => slots.push(Some(msg)),
                    }
                }
                let opened = {
                    let _open = trace.span("open", self.telemetry.open_hist());
                    self.index.open_batch_knn(&plans)
                };
                let mut results = opened.into_iter();
                let mut sets = Vec::with_capacity(slots.len());
                let mut batch_stats = SearchStats::default();
                for slot in slots {
                    match slot {
                        Some(msg) => sets.push(Err(msg)),
                        None => match results.next() {
                            Some(opened) => {
                                let drained = {
                                    let _pull = trace.span("pull", self.telemetry.pull_hist());
                                    opened.and_then(|(cursors, cap)| self.index.drain(cursors, cap))
                                };
                                match drained {
                                    Ok((entries, stats)) => {
                                        batch_stats.merge(&stats);
                                        let list = {
                                            let _stage =
                                                trace.span("stage", self.telemetry.stage_hist());
                                            stage_candidates(
                                                entries,
                                                self.config.max_inline_response_bytes,
                                            )
                                        };
                                        sets.push(Ok(list));
                                    }
                                    // A failing query answers in its own
                                    // slot; batch stats cover exactly the
                                    // successful queries.
                                    Err(e) => sets.push(Err(e.to_string())),
                                }
                            }
                            // open_batch_knn answers one slot per plan; a
                            // short answer would be a coordinator bug —
                            // surface it per slot, never panic.
                            None => sets.push(Err("batch answer missing a query slot".into())),
                        },
                    }
                }
                self.telemetry.record_search(batch_stats);
                Response::CandidateSets(sets)
            }
            Request::FetchObjects { ids } => match self.index.fetch_entries(&ids) {
                Ok(entries) => {
                    let mut objects = Vec::with_capacity(ids.len());
                    for (id, entry) in ids.iter().zip(entries) {
                        match entry {
                            Some(e) => objects.push(FetchedObject {
                                id: *id,
                                payload: e.payload,
                            }),
                            None => return Response::Error(format!("unknown object id {id}")),
                        }
                    }
                    Response::Objects(objects)
                }
                Err(e) => Response::Error(e.to_string()),
            },
            Request::Info => {
                let shape = self.index.shape();
                Response::Info {
                    entries: shape.entries,
                    leaves: u32::try_from(shape.leaves).unwrap_or(u32::MAX),
                    depth: u32::try_from(shape.max_depth).unwrap_or(u32::MAX),
                }
            }
            Request::ExportAll => match self.index.all_entries() {
                Ok(entries) => Response::Candidates(
                    entries
                        .into_iter()
                        .map(|e| Candidate {
                            id: e.id,
                            lower_bound: 0.0,
                            payload: e.payload,
                        })
                        .collect(),
                ),
                Err(e) => Response::Error(e.to_string()),
            },
            // The ops surface: both answers come from ServerTelemetry's
            // atomics and side locks — never a shard lock — so they stay
            // fast while inserts hold shard write locks.
            Request::Health => self
                .telemetry
                .health_response(u32::try_from(self.index.shard_count()).unwrap_or(u32::MAX)),
            Request::MetricsSnapshot => Response::MetricsSnapshot(self.telemetry.metrics_text()),
        }
    }
}

impl<S: BucketStore> SharedRequestHandler for ShardedCloudServer<S> {
    fn handle_shared(&self, request: &[u8]) -> Vec<u8> {
        let mut trace = self.telemetry.trace();
        let decoded = {
            let _decode = trace.span("decode", self.telemetry.decode_hist());
            Request::decode(request)
        };
        let response = match decoded {
            Ok(req) => {
                trace.set_label(request_label(&req));
                self.process_traced(req, &mut trace)
            }
            Err(e) => {
                trace.set_label("undecodable");
                Response::Error(e.to_string())
            }
        };
        self.telemetry.note_response(&response);
        let bytes = {
            let _encode = trace.span("encode", self.telemetry.encode_hist());
            response.encode()
        };
        self.telemetry.finish(trace);
        bytes
    }
}

/// `&mut self` adapter for single-threaded call sites (in-process
/// transports, tests).
impl<S: BucketStore> RequestHandler for ShardedCloudServer<S> {
    fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        self.handle_shared(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{HashRouter, PivotRouter};
    use simcloud_core::protocol::KnnQuery;
    use simcloud_mindex::{Routing, RoutingStrategy};
    use simcloud_storage::MemoryStore;

    fn cfg() -> MIndexConfig {
        MIndexConfig {
            num_pivots: 3,
            max_level: 2,
            bucket_capacity: 4,
            strategy: RoutingStrategy::Distances,
        }
    }

    fn server(shards: usize) -> ShardedCloudServer<MemoryStore> {
        ShardedCloudServer::new(
            cfg(),
            Box::new(HashRouter),
            (0..shards).map(|_| MemoryStore::new()).collect(),
        )
        .unwrap()
    }

    fn entry(id: u64, ds: &[f64]) -> IndexEntry {
        IndexEntry::new(id, Routing::from_distances(ds), vec![id as u8; 3])
    }

    #[test]
    fn insert_then_info_aggregates_shards() {
        let s = server(3);
        let resp = s.process(Request::Insert(vec![
            entry(1, &[0.1, 0.5, 0.9]),
            entry(2, &[0.9, 0.1, 0.5]),
            entry(3, &[0.5, 0.9, 0.1]),
        ]));
        assert_eq!(resp, Response::Inserted(3));
        match s.process(Request::Info) {
            Response::Info {
                entries, leaves, ..
            } => {
                assert_eq!(entries, 3);
                assert!(leaves >= 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn knn_response_is_sorted_and_counts_stats() {
        let s = server(2);
        s.process(Request::Insert(vec![
            entry(1, &[0.1, 0.5, 0.9]),
            entry(2, &[0.4, 0.6, 0.7]),
            entry(3, &[0.9, 0.1, 0.2]),
            entry(4, &[0.11, 0.52, 0.9]),
        ]));
        match s.process(Request::ApproxKnn {
            routing: Routing::from_distances(&[0.1, 0.5, 0.9]),
            cand_size: 3,
        }) {
            Response::CandidateList(list) => {
                assert_eq!(list.headers.len(), 3, "merged list capped at cand_size");
                assert!(list
                    .headers
                    .windows(2)
                    .all(|w| w[0].lower_bound <= w[1].lower_bound));
                assert_eq!(list.payloads.len(), 3, "no budget: everything inlined");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.last_search_stats().candidates, 3);
        assert_eq!(s.total_search_stats().candidates, 3);
    }

    #[test]
    fn partial_insert_reports_prefix_across_shards() {
        let s = server(2);
        let resp = s.process(Request::Insert(vec![
            entry(1, &[0.1, 0.5, 0.9]),
            entry(2, &[0.2, 0.6]), // dimension mismatch
            entry(3, &[0.9, 0.1, 0.2]),
        ]));
        match resp {
            Response::InsertError { inserted, message } => {
                assert_eq!(inserted, 1);
                assert!(message.contains("pivot distances"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
        match s.process(Request::Info) {
            Response::Info { entries, .. } => assert_eq!(entries, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn failed_search_zeroes_last_stats() {
        let s = server(2);
        s.process(Request::Insert(vec![entry(1, &[0.1, 0.5, 0.9])]));
        assert!(matches!(
            s.process(Request::Range {
                distances: vec![0.1, 0.5, 0.9],
                radius: 1.0,
            }),
            Response::CandidateList(_)
        ));
        let before_total = s.total_search_stats();
        let bad = s.process(Request::Range {
            distances: vec![0.1],
            radius: 1.0,
        });
        assert!(matches!(bad, Response::Error(_)));
        assert_eq!(s.last_search_stats(), SearchStats::default());
        assert_eq!(s.total_search_stats(), before_total);
    }

    #[test]
    fn batch_failure_isolated_to_slot_with_summed_stats() {
        let s = server(3);
        s.process(Request::Insert(vec![
            entry(1, &[0.1, 0.5, 0.9]),
            entry(2, &[0.2, 0.6, 0.8]),
        ]));
        match s.process(Request::BatchKnn(vec![
            KnnQuery {
                routing: Routing::from_distances(&[0.1, 0.5, 0.9]),
                cand_size: 2,
            },
            KnnQuery {
                routing: Routing::from_distances(&[0.1, 0.5]), // malformed
                cand_size: 2,
            },
            KnnQuery {
                routing: Routing::from_distances(&[0.2, 0.6, 0.8]),
                cand_size: 1,
            },
        ])) {
            Response::CandidateSets(sets) => {
                assert_eq!(sets.len(), 3);
                assert_eq!(sets[0].as_ref().unwrap().headers.len(), 2);
                assert!(sets[1].as_ref().unwrap_err().contains("pivot distances"));
                assert_eq!(sets[2].as_ref().unwrap().headers.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.last_search_stats().candidates, 3, "successes only");
    }

    /// The sharded server applies the same `cand_size` clamp as the single
    /// server: oversized solo requests are refused with zeroed stats,
    /// oversized batch slots never reach the fan-out while their siblings
    /// still answer.
    #[test]
    fn oversized_cand_size_refused_before_fanout() {
        let s = server(2);
        s.process(Request::Insert(vec![
            entry(1, &[0.1, 0.5, 0.9]),
            entry(2, &[0.2, 0.6, 0.8]),
        ]));
        let over = u32::try_from(simcloud_core::protocol::MAX_CANDIDATE_HEADERS + 1).unwrap();
        match s.process(Request::ApproxKnn {
            routing: Routing::from_distances(&[0.1, 0.5, 0.9]),
            cand_size: over,
        }) {
            Response::Error(msg) => assert!(msg.contains("header response cap"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.last_search_stats(), SearchStats::default());
        match s.process(Request::BatchKnn(vec![
            KnnQuery {
                routing: Routing::from_distances(&[0.1, 0.5, 0.9]),
                cand_size: 2,
            },
            KnnQuery {
                routing: Routing::from_distances(&[0.1, 0.5, 0.9]),
                cand_size: over,
            },
        ])) {
            Response::CandidateSets(sets) => {
                assert_eq!(sets.len(), 2);
                assert_eq!(sets[0].as_ref().unwrap().headers.len(), 2);
                let msg = sets[1].as_ref().unwrap_err();
                assert!(msg.contains("header response cap"), "{msg}");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.last_search_stats().candidates, 2, "successes only");
    }

    #[test]
    fn fetch_objects_mirror_request_and_unknown_id_errors() {
        let s = server(3);
        s.process(Request::Insert(vec![
            entry(1, &[0.1, 0.5, 0.9]),
            entry(2, &[0.2, 0.6, 0.8]),
            entry(3, &[0.9, 0.1, 0.2]),
        ]));
        match s.process(Request::FetchObjects { ids: vec![3, 1, 3] }) {
            Response::Objects(objs) => {
                assert_eq!(
                    objs.iter().map(|o| o.id).collect::<Vec<_>>(),
                    vec![3, 1, 3],
                    "request order and duplicates preserved"
                );
                assert_eq!(objs[0].payload, vec![3u8; 3]);
            }
            other => panic!("unexpected {other:?}"),
        }
        match s.process(Request::FetchObjects { ids: vec![1, 99] }) {
            Response::Error(msg) => assert!(msg.contains("99"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.last_search_stats(), SearchStats::default());
    }

    #[test]
    fn budgeted_sharded_server_ships_headers_only() {
        let s = ShardedCloudServer::with_config(
            cfg(),
            ServerConfig::budgeted(0),
            Box::new(PivotRouter),
            vec![MemoryStore::new(), MemoryStore::new()],
        )
        .unwrap();
        s.process(Request::Insert(vec![
            entry(1, &[0.1, 0.5, 0.9]),
            entry(2, &[0.9, 0.1, 0.5]),
        ]));
        match s.process(Request::ApproxKnn {
            routing: Routing::from_distances(&[0.1, 0.5, 0.9]),
            cand_size: 2,
        }) {
            Response::CandidateList(list) => {
                assert_eq!(list.headers.len(), 2);
                assert!(list.payloads.is_empty(), "budget 0 inlines nothing");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shared_handler_serves_bytes_from_many_threads() {
        let s = std::sync::Arc::new(server(4));
        s.process(Request::Insert(vec![
            entry(1, &[0.1, 0.5, 0.9]),
            entry(2, &[0.2, 0.6, 0.8]),
        ]));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = std::sync::Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..10 {
                        let bytes = s.handle_shared(
                            &Request::ApproxKnn {
                                routing: Routing::from_distances(&[0.1, 0.5, 0.9]),
                                cand_size: 2,
                            }
                            .encode(),
                        );
                        match Response::decode(&bytes).unwrap() {
                            Response::CandidateList(list) => assert_eq!(list.headers.len(), 2),
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                });
            }
        });
        assert_eq!(s.total_search_stats().candidates, 4 * 10 * 2);
    }
}
