//! K-way frontier merge over per-shard candidate cursors.
//!
//! Every shard answers a search by *opening* a
//! [`CandidateCursor`](simcloud_mindex::CandidateCursor): an owned,
//! lock-free stream of `(entry, lower_bound)` pairs in nondecreasing
//! bound order (the contract of `MIndex::knn_cursor` / `range_cursor`).
//! The coordinator pulls the globally smallest bound from whichever
//! cursor holds it — a k-way heap keyed by each cursor's `peek_bound` —
//! and stops the moment `cap` candidates are drained. Entries beyond the
//! stopping point are never decoded, so per-shard generation work drops
//! toward `cap / N` instead of every shard materializing a full list.
//!
//! **Exactness argument.** The pull sequence equals the old
//! gather-everything merge wire for wire: each cursor yields exactly the
//! (stably sorted) sequence the eager per-shard list contained, the heap
//! uses the same min-bound-first, lower-shard-tie-break ordering, and a
//! shard's eager trim to `cand_size` can never matter because the global
//! cap bounds how deep any one cursor is pulled. For range queries each
//! shard streams *every* entry of its partition that survives pivot
//! filtering, so the uncapped drain is exactly the union — a superset of
//! the true results over the whole collection, and client refinement
//! makes the final answer identical to a single index's. For k-NN,
//! keeping the `cand_size` smallest bounds of the union yields at least
//! as promising a candidate set as any single enumeration of the same
//! cells (see the README's sharded-deployment section for when the sets
//! coincide).

use std::cmp::Ordering;

use simcloud_mindex::{CandidateCursor, IndexEntry, MIndexError, SearchStats};
use simcloud_telemetry::{Histogram, SpanTimer};

/// One shard's frontier head: the bound its cursor would yield next.
#[derive(Clone, Copy)]
struct Head {
    bound: f64,
    shard: usize,
}

/// The frontier's total order: lowest bound first, ties broken by shard
/// index for a deterministic merge (earlier shards win).
fn precedes(a: &Head, b: &Head) -> bool {
    a.bound
        .total_cmp(&b.bound)
        .then_with(|| a.shard.cmp(&b.shard))
        == Ordering::Less
}

/// Drains the per-shard cursors' merged frontier into one ascending list
/// of at most `cap` entries (`None` = drain everything). Within equal
/// bounds, earlier shards win — deterministic for a fixed shard layout.
///
/// The coordinator never holds a shard guard: cursors are owned values,
/// so this loop runs entirely lock-free after the fan-out that opened
/// them (the lock-discipline lint enforces that no pull happens with
/// shard guards live).
///
/// Returns the merged list plus the fan-out stats: per-shard cost
/// counters (including `candidates_generated`, the decoded-entry work
/// counter) sum via [`SearchStats::merge_from`], and `candidates`
/// reports the merged (capped) list — the set the client receives.
pub fn drain_frontier(
    cursors: Vec<CandidateCursor>,
    cap: Option<usize>,
) -> Result<(Vec<(IndexEntry, f64)>, SearchStats), MIndexError> {
    drain_frontier_timed(cursors, cap, None)
}

/// How often the drain loop samples a pull run into the `shard.pull`
/// histogram. Runs are the hottest unit on the gather path (dozens per
/// query), and two clock reads per run shows up as whole percents of
/// query throughput — sampling every 8th run keeps the latency
/// distribution representative while staying inside the ≤ 5 % telemetry
/// budget asserted by `--bench obs`. The first run is always sampled, so
/// any timed drain lands at least one record.
const PULL_SAMPLE_EVERY: u32 = 8;

/// [`drain_frontier`] with optional pull-run timing: when `pull` is
/// bound, every [`PULL_SAMPLE_EVERY`]-th uninterrupted run against the
/// winning cursor records its duration (one histogram sample per sampled
/// run, amortized over the run's entries — never per candidate).
pub fn drain_frontier_timed(
    mut cursors: Vec<CandidateCursor>,
    cap: Option<usize>,
    pull: Option<&Histogram>,
) -> Result<(Vec<(IndexEntry, f64)>, SearchStats), MIndexError> {
    let total: usize = cursors.iter().map(CandidateCursor::remaining).sum();
    let want = cap.map_or(total, |c| c.min(total));
    let mut out = Vec::with_capacity(want);
    // Live frontier heads, one per non-empty cursor. A deployment has a
    // handful of shards, so an argmin scan over a flat vec beats a binary
    // heap's per-pull pop/sift/push — and the run-length inner loop below
    // keeps pulling from the winning cursor without touching the other
    // heads at all while it still holds the global minimum.
    let mut heads: Vec<Head> = cursors
        .iter()
        .enumerate()
        .filter_map(|(shard, c)| c.peek_bound().map(|bound| Head { bound, shard }))
        .collect();
    let mut run_no: u32 = 0;
    while out.len() < want {
        // Argmin by (bound, shard) over the live heads, tracking the
        // runner-up for the run-length pull below.
        let mut best: Option<(usize, Head)> = None;
        let mut runner_up: Option<Head> = None;
        for (slot, &head) in heads.iter().enumerate() {
            match best {
                Some((_, b)) if !precedes(&head, &b) => {
                    if runner_up.is_none_or(|r| precedes(&head, &r)) {
                        runner_up = Some(head);
                    }
                }
                prev => {
                    // A new minimum demotes the previous one to runner-up
                    // (it preceded every other head seen so far).
                    runner_up = prev.map(|(_, b)| b);
                    best = Some((slot, head));
                }
            }
        }
        let Some((slot, head)) = best else { break };
        let Some(cursor) = cursors.get_mut(head.shard) else {
            // Every head was built from a live cursor; a missing slot means
            // the heads and cursors diverged — stop rather than index past
            // the end.
            break;
        };
        // Pull the whole run: the winning cursor stays the frontier
        // minimum until its next bound passes the runner-up's head (or
        // ties it from a later shard), which is exactly when the old
        // k-way heap would have switched cursors.
        {
            let _run = pull
                .filter(|_| run_no.is_multiple_of(PULL_SAMPLE_EVERY))
                .map(|h| SpanTimer::new(h, true));
            run_no = run_no.wrapping_add(1);
            while let Some(c) = cursor.next_candidate()? {
                out.push(c);
                if out.len() >= want {
                    break;
                }
                let run_continues = cursor.peek_bound().is_some_and(|bound| {
                    let next = Head {
                        bound,
                        shard: head.shard,
                    };
                    runner_up.is_none_or(|r| precedes(&next, &r))
                });
                if !run_continues {
                    break;
                }
            }
        }
        match cursor.peek_bound() {
            Some(bound) => match heads.get_mut(slot) {
                Some(h) => h.bound = bound,
                None => break,
            },
            None => {
                heads.swap_remove(slot);
            }
        }
    }
    let mut stats = SearchStats::default();
    for cursor in &cursors {
        stats.merge_from(&cursor.stats());
    }
    stats.candidates = out.len() as u64;
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcloud_mindex::{MIndex, MIndexConfig, PromiseEvaluator, Routing, RoutingStrategy};
    use simcloud_storage::MemoryStore;

    /// A one-cell index whose entries carry the given bounds (1-pivot
    /// world: the wire bound for query distance 0 is |d| minus slack, so
    /// ordering follows the inserted distances).
    fn cursor_over(points: &[(u64, f64)]) -> CandidateCursor {
        let mut idx = MIndex::new(
            MIndexConfig {
                num_pivots: 1,
                max_level: 1,
                bucket_capacity: 1000,
                strategy: RoutingStrategy::Distances,
            },
            MemoryStore::new(),
        )
        .unwrap();
        for &(id, d) in points {
            idx.insert(IndexEntry::new(
                id,
                Routing::from_distances(&[d]),
                vec![id as u8],
            ))
            .unwrap();
        }
        idx.knn_cursor(&PromiseEvaluator::from_distances(vec![0.0]), points.len())
            .unwrap()
    }

    fn ids(list: &[(IndexEntry, f64)]) -> Vec<u64> {
        list.iter().map(|(e, _)| e.id).collect()
    }

    #[test]
    fn merges_cursor_frontiers_ascending() {
        let cursors = vec![
            cursor_over(&[(1, 1.0), (2, 5.0), (3, 9.0)]),
            cursor_over(&[(4, 2.0), (5, 6.0)]),
            cursor_over(&[]),
            cursor_over(&[(6, 0.5)]),
        ];
        let (merged, stats) = drain_frontier(cursors, None).unwrap();
        assert_eq!(ids(&merged), vec![6, 1, 4, 2, 5, 3]);
        assert!(merged.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(stats.candidates, 6);
    }

    #[test]
    fn cap_keeps_globally_smallest_bounds() {
        let cursors = vec![
            cursor_over(&[(1, 3.0), (2, 4.0)]),
            cursor_over(&[(3, 1.0), (4, 2.0), (5, 2.5)]),
        ];
        let (merged, stats) = drain_frontier(cursors, Some(3)).unwrap();
        assert_eq!(ids(&merged), vec![3, 4, 5]);
        assert_eq!(stats.candidates, 3);
    }

    #[test]
    fn ties_resolve_by_shard_order_deterministically() {
        let make = || vec![cursor_over(&[(1, 0.5)]), cursor_over(&[(2, 0.5)])];
        let (a, _) = drain_frontier(make(), None).unwrap();
        let (b, _) = drain_frontier(make(), None).unwrap();
        assert_eq!(a[0].0.id, 1, "earlier shard wins the tie");
        assert_eq!(ids(&a), ids(&b));
    }

    #[test]
    fn empty_and_zero_cap() {
        let (merged, _) = drain_frontier(vec![], Some(5)).unwrap();
        assert!(merged.is_empty());
        let (merged, stats) = drain_frontier(vec![cursor_over(&[(1, 0.1)])], Some(0)).unwrap();
        assert!(merged.is_empty());
        assert_eq!(stats.candidates, 0);
    }

    /// The whole point of the frontier: a capped drain decodes little
    /// more than `cap` entries in total, not `shards × cap`.
    #[test]
    fn capped_drain_generates_sublinearly() {
        let big: Vec<(u64, f64)> = (0..200).map(|i| (i, i as f64)).collect();
        let cursors = vec![
            cursor_over(&big),
            cursor_over(
                &big.iter()
                    .map(|&(i, d)| (1000 + i, d + 0.5))
                    .collect::<Vec<_>>(),
            ),
            cursor_over(
                &big.iter()
                    .map(|&(i, d)| (2000 + i, d + 0.7))
                    .collect::<Vec<_>>(),
            ),
            cursor_over(
                &big.iter()
                    .map(|&(i, d)| (3000 + i, d + 0.9))
                    .collect::<Vec<_>>(),
            ),
        ];
        let (merged, stats) = drain_frontier(cursors, Some(100)).unwrap();
        assert_eq!(merged.len(), 100);
        assert!(
            stats.candidates_generated < 2 * 100,
            "generated {} for a cap of 100 over 4 shards — the frontier \
             must not materialize every shard's full list",
            stats.candidates_generated
        );
    }
}
