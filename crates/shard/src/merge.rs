//! K-way merge of per-shard candidate lists.
//!
//! Every shard answers a search with a candidate list sorted ascending by
//! its wire lower bound (the contract of `MIndex::knn_candidates` /
//! `range_candidates`). The gather side merges those sorted lists into one
//! list with the same invariant, optionally capped at `cand_size`.
//!
//! **Exactness argument.** For range queries each shard returns *every*
//! entry of its partition that survives pivot filtering, so the merged
//! list is exactly the union — a superset of the true results over the
//! whole collection, and client refinement makes the final answer
//! identical to a single index's. For k-NN, each shard returns its locally
//! best `cand_size` candidates by lower bound; keeping the `cand_size`
//! smallest bounds of the union therefore yields at least as promising a
//! candidate set as any single enumeration of the same cells (see the
//! README's sharded-deployment section for when the sets coincide).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use simcloud_mindex::IndexEntry;

/// One cursor into a shard's sorted candidate list. Ordered min-bound
/// first (`BinaryHeap` is a max-heap, so comparisons are reversed), ties
/// broken by shard index for a deterministic merge.
struct Cursor {
    bound: f64,
    shard: usize,
}

impl PartialEq for Cursor {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Cursor {}

impl PartialOrd for Cursor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cursor {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .bound
            .total_cmp(&self.bound)
            .then_with(|| other.shard.cmp(&self.shard))
    }
}

/// Merges per-shard candidate lists (each sorted ascending by bound) into
/// one ascending list of at most `cap` entries (`None` = no cap). Within
/// equal bounds, earlier shards win — deterministic for a fixed shard
/// layout.
pub fn merge_ranked(
    lists: Vec<Vec<(IndexEntry, f64)>>,
    cap: Option<usize>,
) -> Vec<(IndexEntry, f64)> {
    let total: usize = lists.iter().map(Vec::len).sum();
    let want = cap.map_or(total, |c| c.min(total));
    let mut out = Vec::with_capacity(want);
    let mut lists: Vec<std::vec::IntoIter<(IndexEntry, f64)>> =
        lists.into_iter().map(Vec::into_iter).collect();
    let mut heap = BinaryHeap::with_capacity(lists.len());
    let mut heads: Vec<Option<(IndexEntry, f64)>> = Vec::with_capacity(lists.len());
    for (shard, it) in lists.iter_mut().enumerate() {
        match it.next() {
            Some(head) => {
                heap.push(Cursor {
                    bound: head.1,
                    shard,
                });
                heads.push(Some(head));
            }
            None => heads.push(None),
        }
    }
    while out.len() < want {
        let Some(cur) = heap.pop() else { break };
        // Every cursor in the heap was pushed alongside a live head for its
        // shard, so a missing slot means the heap and heads diverged — drop
        // the cursor rather than index past the end.
        let Some(slot) = heads.get_mut(cur.shard) else {
            break;
        };
        let Some(head) = slot.take() else { break };
        out.push(head);
        if let Some(next) = lists.get_mut(cur.shard).and_then(Iterator::next) {
            heap.push(Cursor {
                bound: next.1,
                shard: cur.shard,
            });
            if let Some(slot) = heads.get_mut(cur.shard) {
                *slot = Some(next);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcloud_mindex::Routing;

    fn e(id: u64, bound: f64) -> (IndexEntry, f64) {
        (
            IndexEntry::new(id, Routing::from_distances(&[bound]), vec![]),
            bound,
        )
    }

    fn bounds(list: &[(IndexEntry, f64)]) -> Vec<f64> {
        list.iter().map(|(_, b)| *b).collect()
    }

    #[test]
    fn merges_sorted_lists_ascending() {
        let merged = merge_ranked(
            vec![
                vec![e(1, 0.1), e(2, 0.5), e(3, 0.9)],
                vec![e(4, 0.2), e(5, 0.6)],
                vec![],
                vec![e(6, 0.0)],
            ],
            None,
        );
        assert_eq!(bounds(&merged), vec![0.0, 0.1, 0.2, 0.5, 0.6, 0.9]);
        assert_eq!(merged[0].0.id, 6);
    }

    #[test]
    fn cap_keeps_globally_smallest_bounds() {
        let merged = merge_ranked(
            vec![
                vec![e(1, 0.3), e(2, 0.4)],
                vec![e(3, 0.1), e(4, 0.2), e(5, 0.25)],
            ],
            Some(3),
        );
        assert_eq!(
            merged.iter().map(|(c, _)| c.id).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
    }

    #[test]
    fn ties_resolve_by_shard_order_deterministically() {
        let a = merge_ranked(vec![vec![e(1, 0.5)], vec![e(2, 0.5)]], None);
        let b = merge_ranked(vec![vec![e(1, 0.5)], vec![e(2, 0.5)]], None);
        assert_eq!(a[0].0.id, 1, "earlier shard wins the tie");
        assert_eq!(
            a.iter().map(|(c, _)| c.id).collect::<Vec<_>>(),
            b.iter().map(|(c, _)| c.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_and_zero_cap() {
        assert!(merge_ranked(vec![], Some(5)).is_empty());
        assert!(merge_ranked(vec![vec![e(1, 0.1)]], Some(0)).is_empty());
    }
}
