//! # simcloud — Secure Metric-Based Index for Similarity Cloud
//!
//! A from-scratch Rust reproduction of *Kozák, Novak, Zezula: Secure
//! Metric-Based Index for Similarity Cloud* (SDM @ VLDB 2012): the
//! **Encrypted M-Index**, a privacy-preserving metric similarity index for
//! outsourced "similarity clouds", together with every substrate it needs
//! (metric toolkit, AES/SHA-2 stack, bucket storage, client/server
//! transport) and the comparison baselines of Yiu et al.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! ```
//! use simcloud::prelude::*;
//!
//! // Data owner: generate data, pick a secret key (pivots + AES key).
//! let data = simcloud::datasets::yeast_like(7, Some(500)).vectors;
//! let (key, _master) = SecretKey::generate(&data, 30, &L1, PivotSelection::Random, 42);
//!
//! // Deploy an in-process similarity cloud and outsource the collection.
//! let mut cloud = simcloud::core::in_process(
//!     key, L1, MIndexConfig::yeast(), MemoryStore::new(), ClientConfig::distances(),
//! ).unwrap();
//! let objects: Vec<(ObjectId, Vector)> = data.iter().cloned().enumerate()
//!     .map(|(i, v)| (ObjectId(i as u64), v)).collect();
//! cloud.insert_bulk(&objects).unwrap();
//!
//! // Authorized client: approximate 10-NN with a 100-candidate budget.
//! let (neighbors, costs) = cloud.knn_approx(&data[0], 10, 100).unwrap();
//! assert_eq!(neighbors[0].0, ObjectId(0));
//! assert!(costs.candidates <= 100);
//! ```

/// Telemetry (counters, latency histograms, phase spans, slow-query log).
pub use simcloud_telemetry as telemetry;

/// Metric-space toolkit (vectors, metrics, pivots, permutations).
pub use simcloud_metric as metric;

/// Symmetric crypto stack (AES, SHA-256, HMAC, envelopes).
pub use simcloud_crypto as crypto;

/// Bucket storage (memory + paged disk).
pub use simcloud_storage as storage;

/// Client/server transport with cost accounting.
pub use simcloud_transport as transport;

/// The M-Index and its plain (non-encrypted) deployment.
pub use simcloud_mindex as mindex;

/// The Encrypted M-Index (the paper's contribution).
pub use simcloud_core as core;

/// Sharded scatter-gather deployment of the Encrypted M-Index.
pub use simcloud_shard as shard;

/// Comparison baselines (trivial, EHI, MPT, FDH).
pub use simcloud_baselines as baselines;

/// Synthetic datasets, workloads, ground truth.
pub use simcloud_datasets as datasets;

/// Convenience prelude with the most common types.
pub mod prelude {
    pub use simcloud_core::{
        connect_tcp_with, in_process, over_tcp, ClientConfig, ClientError, CostReport,
        DistanceTransform, EncryptedClient, SecretKey,
    };
    pub use simcloud_metric::{
        CombinedMetric, Lp, Metric, ObjectId, PivotSelection, Vector, L1, L2,
    };
    pub use simcloud_mindex::{recall, MIndexConfig, PlainMIndex, RoutingStrategy};
    pub use simcloud_shard::{
        client_for_sharded, memory_stores, sharded_in_process, HashRouter, PivotRouter,
        ShardedCloudServer,
    };
    pub use simcloud_storage::{DiskStore, DiskStoreOptions, MemoryStore};
    pub use simcloud_transport::{RetryPolicy, ServeOptions, TcpClientConfig, TransportError};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_round_trip() {
        let data: Vec<Vector> = (0..100)
            .map(|i| Vector::new(vec![i as f32, (i % 9) as f32]))
            .collect();
        let (key, _) = SecretKey::generate(&data, 4, &L2, PivotSelection::Random, 1);
        let mut cfg = MIndexConfig::yeast();
        cfg.num_pivots = 4;
        let mut cloud =
            in_process(key, L2, cfg, MemoryStore::new(), ClientConfig::distances()).unwrap();
        let objects: Vec<(ObjectId, Vector)> = data
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, v)| (ObjectId(i as u64), v))
            .collect();
        cloud.insert_bulk(&objects).unwrap();
        let (res, _) = cloud.knn_approx(&data[5], 3, 50).unwrap();
        assert_eq!(res[0].0, ObjectId(5));
    }
}
